//! Serializable snapshot isolation (SSI) — the §7.1 comparator.
//!
//! Cahill, Röhm, and Fekete ("Serializable isolation for snapshot
//! databases", TODS 2009) make snapshot isolation serializable by detecting
//! the *dangerous structure* that every non-serializable SI execution must
//! contain: a pivot transaction with both an incoming and an outgoing
//! rw-antidependency among concurrent transactions. The paper positions
//! write-snapshot isolation against exactly this approach: SSI's pattern
//! check has lower overhead compared to that of the full dependency
//! graph, but "allows for false positives, which further lowers the
//! concurrency level due to unnecessary aborts" (§7.1).
//!
//! [`SsiOracle`] implements SSI in the same centralized, commit-time
//! validated setting as [`crate::StatusOracleCore`], so the three levels can
//! be compared on identical schedules:
//!
//! * runs the plain SI write-write check first (SSI builds on SI);
//! * tracks, for a sliding window of recently committed transactions, their
//!   read/write sets and conflict flags;
//! * on commit of `T`, finds rw-antidependencies between `T` and
//!   overlapping committed transactions in both directions, and aborts `T`
//!   if the commit would complete a dangerous structure — either `T` itself
//!   becomes a pivot, or an already-committed transaction would.
//!
//! Compared to write-snapshot isolation: SSI admits some histories WSI
//! rejects (the paper's History 6 — an out-edge alone is not dangerous) but
//! pays two set intersections per commit instead of one probe per read row,
//! keeps whole read/write *sets* of recent transactions resident rather
//! than one timestamp per row, and still aborts serializable executions
//! whenever a pivot is not actually on a cycle.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use wsi_obs::{Cause, EventData, Journal};

use crate::{
    commit_table::{CommitTable, TxnStatus},
    error::{AbortReason, CommitOutcome},
    lastcommit::{LastCommitTable, Probe, UnboundedLastCommit},
    oracle::CommitRequest,
    row::RowId,
    ts::{Timestamp, TimestampSource},
};

/// A committed transaction retained in the SSI detection window.
#[derive(Debug, Clone)]
struct WindowEntry {
    commit_ts: Timestamp,
    /// Ordered sets: probe order (and the abort-reason row reported when a
    /// dangerous structure fires) must be a pure function of the request,
    /// never of hasher seeding — seed-reproducible runs depend on it.
    reads: BTreeSet<RowId>,
    writes: BTreeSet<RowId>,
    /// Some concurrent transaction has an rw-antidependency *into* this one
    /// (someone read data this transaction overwrote).
    in_conflict: bool,
    /// This transaction has an rw-antidependency *out* to a concurrent one
    /// (it read data someone else overwrote).
    out_conflict: bool,
}

/// Counters for the SSI oracle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SsiStats {
    /// Transactions begun.
    pub begins: u64,
    /// Write transactions committed.
    pub commits: u64,
    /// Read-only commits (free, as under SI/WSI).
    pub read_only_commits: u64,
    /// Aborts from the underlying SI write-write check.
    pub ww_aborts: u64,
    /// Aborts from the dangerous-structure rule.
    pub pivot_aborts: u64,
    /// Commits overturned because the durability hook failed (WAL quorum
    /// loss between decision and persistence; see
    /// [`SsiOracle::commit_durable`]).
    pub wal_aborts: u64,
    /// Client-requested aborts ([`SsiOracle::abort`]).
    pub client_aborts: u64,
}

impl SsiStats {
    /// Total aborts.
    pub fn total_aborts(&self) -> u64 {
        self.ww_aborts + self.pivot_aborts + self.wal_aborts + self.client_aborts
    }

    /// Abort rate over decided write transactions (client-requested aborts
    /// never reach a decision, so they are excluded).
    pub fn abort_rate(&self) -> f64 {
        let refused = self.ww_aborts + self.pivot_aborts + self.wal_aborts;
        let decided = self.commits + refused;
        if decided == 0 {
            0.0
        } else {
            refused as f64 / decided as f64
        }
    }
}

/// A centralized, commit-time-validated implementation of Cahill-style SSI.
///
/// # Example: write skew aborts, but History 6 is admitted
///
/// ```
/// use wsi_core::{ssi::SsiOracle, CommitRequest, RowId};
///
/// let mut o = SsiOracle::new();
/// // History 6: r1[x] r2[z] w2[x] w1[y] c2 c1 — serializable, rejected by
/// // WSI, admitted by SSI (txn1 has an out-conflict but no in-conflict).
/// let t1 = o.begin();
/// let t2 = o.begin();
/// assert!(o
///     .commit(CommitRequest::new(t2, vec![RowId(3)], vec![RowId(1)]))
///     .is_committed());
/// assert!(o
///     .commit(CommitRequest::new(t1, vec![RowId(1)], vec![RowId(2)]))
///     .is_committed());
/// ```
#[derive(Debug, Default)]
pub struct SsiOracle {
    ts: TimestampSource,
    last_commit: UnboundedLastCommit,
    commit_table: CommitTable,
    window: VecDeque<WindowEntry>,
    /// Start timestamps of in-flight transactions (window pruning bound).
    active: BTreeMap<Timestamp, ()>,
    stats: SsiStats,
    journal: Option<Journal>,
}

impl SsiOracle {
    /// Creates an empty oracle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a flight-recorder journal. Unlike the SI/WSI split (where
    /// the embedding `Db` records lifecycle events and the oracle only the
    /// per-row verdicts), the SSI oracle owns every decision — WW base
    /// check, dangerous-structure detection, durability overturns — so it
    /// records the full event stream itself, including the in/out rw-edge
    /// partners of a pivot abort ([`Cause::Pivot`]).
    pub fn attach_journal(&mut self, journal: Journal) {
        self.journal = Some(journal);
    }

    /// The attached journal, if any.
    pub fn journal(&self) -> Option<&Journal> {
        self.journal.as_ref()
    }

    fn record(&self, txn: Timestamp, data: EventData) {
        if let Some(journal) = &self.journal {
            journal.record(txn.raw(), data);
        }
    }

    /// Issues a start timestamp.
    pub fn begin(&mut self) -> Timestamp {
        self.stats.begins += 1;
        let ts = self.ts.next();
        self.active.insert(ts, ());
        self.record(ts, EventData::Begin);
        ts
    }

    /// Registers a client abort.
    pub fn abort(&mut self, start_ts: Timestamp) {
        self.stats.client_aborts += 1;
        self.active.remove(&start_ts);
        self.commit_table.record_abort(start_ts);
        self.record(start_ts, EventData::Abort(Cause::Client));
    }

    /// Decides a commit request.
    pub fn commit(&mut self, req: CommitRequest) -> CommitOutcome {
        enum Never {}
        match self.commit_durable(req, |_| Ok::<(), Never>(())) {
            Ok(outcome) => outcome,
            Err(never) => match never {},
        }
    }

    /// Decides a commit request with a durability hook.
    ///
    /// If the decision is *commit*, `persist` is invoked with the issued
    /// commit timestamp **before any oracle state is mutated** — the caller
    /// appends and flushes the WAL record inside it. On `Err` the decision
    /// is overturned as if it were never made: the transaction is recorded
    /// as aborted (count it with [`SsiStats::wal_aborts`]), no conflict flag
    /// or `lastCommit` entry changes, and only the commit timestamp stays
    /// burned. This is the WAL-before-exposure discipline a durable SSI
    /// engine needs; [`SsiOracle::commit`] is this method with an
    /// infallible hook.
    ///
    /// # Errors
    ///
    /// Propagates `persist`'s error after recording the overturn.
    pub fn commit_durable<E>(
        &mut self,
        req: CommitRequest,
        persist: impl FnOnce(Timestamp) -> std::result::Result<(), E>,
    ) -> std::result::Result<CommitOutcome, E> {
        if req.is_read_only() {
            // Read-only transactions skip the WAL (nothing to persist) but
            // NOT the dangerous-structure check: a snapshot read can close
            // a cycle as the third transaction — Fekete, O'Neil & O'Neil's
            // read-only anomaly — by handing an in-conflict to a committed
            // transaction that already carries an out-conflict. (The
            // `ssi_checker` property test finds such schedules within a few
            // hundred random seeds if reads are skipped here.) With no
            // writes the transaction has no in-edge and cannot itself be
            // the pivot, so only rule 2 applies.
            let reads: BTreeSet<RowId> = req.read_rows.iter().copied().collect();
            let mut out_partners: Vec<usize> = Vec::new();
            for (idx, u) in self.window.iter().enumerate() {
                if u.commit_ts < req.start_ts {
                    continue;
                }
                if u.writes.iter().any(|r| reads.contains(r)) {
                    out_partners.push(idx);
                }
            }
            if let Some(&pivot) = out_partners
                .iter()
                .find(|&&idx| self.window[idx].out_conflict)
            {
                // T →rw U would make the already-committed U a pivot. The
                // journal names U (T's out-edge partner) as the culprit; T
                // has no in-edge — it is read-only.
                self.stats.pivot_aborts += 1;
                self.active.remove(&req.start_ts);
                self.commit_table.record_abort(req.start_ts);
                self.record(
                    req.start_ts,
                    EventData::Abort(Cause::Pivot {
                        in_commit_ts: 0,
                        out_commit_ts: self.window[pivot].commit_ts.raw(),
                    }),
                );
                return Ok(CommitOutcome::Aborted(AbortReason::ReadWriteConflict {
                    row: *reads.iter().next().expect("partners imply reads"),
                    committed_at: req.start_ts,
                }));
            }
            let out_t = !out_partners.is_empty();
            for &idx in &out_partners {
                self.window[idx].in_conflict = true;
            }
            self.active.remove(&req.start_ts);
            if !reads.is_empty() {
                // The reads must stay probeable: a writer committing later
                // may acquire an in-conflict from this transaction. The
                // entry's commit stamp is issued from the shared source so
                // the concurrency test (`commit_ts < start_ts`) sees the
                // true commit position, even though the caller-visible
                // commit timestamp of a read-only transaction remains its
                // start (it reads exactly the snapshot state).
                let commit_ts = self.ts.next();
                self.window.push_back(WindowEntry {
                    commit_ts,
                    reads,
                    writes: BTreeSet::new(),
                    in_conflict: false,
                    out_conflict: out_t,
                });
                self.prune_window();
            }
            self.stats.read_only_commits += 1;
            self.record(req.start_ts, EventData::ReadOnlyCommit);
            return Ok(CommitOutcome::Committed(req.start_ts));
        }

        // --- SI base: first-committer-wins write-write check. ------------
        for &row in &req.write_rows {
            if let Probe::Resident(last) = self.last_commit.probe(row) {
                if last > req.start_ts {
                    self.record(
                        req.start_ts,
                        EventData::CheckRow {
                            row: row.raw(),
                            conflict: Some(last.raw()),
                        },
                    );
                    self.stats.ww_aborts += 1;
                    self.active.remove(&req.start_ts);
                    self.commit_table.record_abort(req.start_ts);
                    self.record(
                        req.start_ts,
                        EventData::Abort(Cause::WriteWrite {
                            row: row.raw(),
                            committed_at: last.raw(),
                        }),
                    );
                    return Ok(CommitOutcome::Aborted(AbortReason::WriteWriteConflict {
                        row,
                        committed_at: last,
                    }));
                }
            }
            self.record(
                req.start_ts,
                EventData::CheckRow {
                    row: row.raw(),
                    conflict: None,
                },
            );
        }

        // --- Dangerous-structure detection. -------------------------------
        let reads: BTreeSet<RowId> = req.read_rows.iter().copied().collect();
        let writes: BTreeSet<RowId> = req.write_rows.iter().copied().collect();
        // T's partners among committed, temporally overlapping transactions:
        // out: T →rw U (U overwrote something T read, committing during T's
        //      lifetime);
        // in:  U →rw T (U read something T overwrites; U was concurrent).
        let mut out_partners: Vec<usize> = Vec::new();
        let mut in_partners: Vec<usize> = Vec::new();
        for (idx, u) in self.window.iter().enumerate() {
            // Concurrency between T and a committed U: T started before U
            // committed (T commits after every committed U by construction,
            // so the other half of lifetime overlap always holds). A U that
            // committed before T began produces ordinary WR dependencies,
            // not antidependencies.
            if u.commit_ts < req.start_ts {
                continue;
            }
            if u.writes.iter().any(|r| reads.contains(r)) {
                out_partners.push(idx);
            }
            if u.reads.iter().any(|r| writes.contains(r)) {
                in_partners.push(idx);
            }
        }
        let in_t = !in_partners.is_empty();
        let out_t = !out_partners.is_empty();
        // The dangerous structure's edge partners, `(in_commit_ts,
        // out_commit_ts)`, recorded for abort forensics: a 0 marks an edge
        // the pivot does not have (rule 2 fires on one edge alone).
        // Rule 1: T itself is a pivot — both edges go to committed
        // partners, named by their commit timestamps.
        let mut dangerous: Option<(u64, u64)> = if in_t && out_t {
            Some((
                self.window[in_partners[0]].commit_ts.raw(),
                self.window[out_partners[0]].commit_ts.raw(),
            ))
        } else {
            None
        };
        // Rule 2: committing T would turn an already-committed transaction
        // into a pivot (it cannot be aborted anymore, so T must be).
        if dangerous.is_none() {
            for &idx in &out_partners {
                // T →rw U gives U an in-conflict; dangerous if U already has
                // an out-conflict.
                if self.window[idx].out_conflict {
                    dangerous = Some((0, self.window[idx].commit_ts.raw()));
                    break;
                }
            }
        }
        if dangerous.is_none() {
            for &idx in &in_partners {
                // U →rw T gives U an out-conflict; dangerous if U already
                // has an in-conflict.
                if self.window[idx].in_conflict {
                    dangerous = Some((self.window[idx].commit_ts.raw(), 0));
                    break;
                }
            }
        }
        if let Some((in_commit_ts, out_commit_ts)) = dangerous {
            self.stats.pivot_aborts += 1;
            self.active.remove(&req.start_ts);
            self.commit_table.record_abort(req.start_ts);
            self.record(
                req.start_ts,
                EventData::Abort(Cause::Pivot {
                    in_commit_ts,
                    out_commit_ts,
                }),
            );
            // Smallest read row: deterministic (the sets are ordered), so a
            // replayed schedule reports the identical abort reason.
            return Ok(CommitOutcome::Aborted(AbortReason::ReadWriteConflict {
                row: *reads
                    .iter()
                    .next()
                    .or_else(|| writes.iter().next())
                    .expect("write txn has rows"),
                committed_at: req.start_ts,
            }));
        }

        // --- Commit: persist durably, then publish flags and state. -------
        let commit_ts = self.ts.next();
        if let Err(e) = persist(commit_ts) {
            // Overturned before any state mutation: no conflict flag,
            // `lastCommit` entry, or window entry ever referenced this
            // transaction, so nothing needs undoing.
            self.stats.wal_aborts += 1;
            self.active.remove(&req.start_ts);
            self.commit_table.record_abort(req.start_ts);
            self.record(req.start_ts, EventData::Abort(Cause::QuorumLoss));
            return Err(e);
        }
        for &idx in &out_partners {
            self.window[idx].in_conflict = true;
        }
        for &idx in &in_partners {
            self.window[idx].out_conflict = true;
        }
        for &row in &req.write_rows {
            self.last_commit.record(row, commit_ts);
        }
        self.commit_table.record_commit(req.start_ts, commit_ts);
        self.active.remove(&req.start_ts);
        self.window.push_back(WindowEntry {
            commit_ts,
            reads,
            writes,
            // T's own flags, persisted for future commits against it.
            in_conflict: in_t,
            out_conflict: out_t,
        });
        self.prune_window();
        self.stats.commits += 1;
        self.record(
            req.start_ts,
            EventData::Commit {
                commit_ts: commit_ts.raw(),
            },
        );
        Ok(CommitOutcome::Committed(commit_ts))
    }

    /// Re-applies a committed transaction during WAL replay
    /// (single-threaded recovery).
    ///
    /// The replayed transaction joins the `lastCommit` table and the commit
    /// table but not the detection window: commit records carry no read
    /// sets, and no transaction concurrent with a pre-crash commit can still
    /// be in flight after the crash — in-flight state died with the process
    /// — so the window entry could never fire.
    pub fn replay_commit(&mut self, start_ts: Timestamp, commit_ts: Timestamp, rows: &[RowId]) {
        self.ts.advance_to(commit_ts);
        for &row in rows {
            self.last_commit.record(row, commit_ts);
        }
        self.commit_table.record_commit(start_ts, commit_ts);
    }

    /// Re-applies an aborted transaction during WAL replay.
    pub fn replay_abort(&mut self, start_ts: Timestamp) {
        self.commit_table.record_abort(start_ts);
    }

    /// Burns timestamps up to `bound` during recovery (reservation records
    /// and overturned commits keep their timestamps unreusable).
    pub fn advance_timestamps(&mut self, bound: Timestamp) {
        self.ts.advance_to(bound);
    }

    /// A garbage-collection low-water mark: the smallest active start
    /// timestamp, or one past the last issued timestamp when the oracle is
    /// quiescent. No current or future snapshot can observe below it.
    pub fn watermark(&self) -> Timestamp {
        self.active
            .keys()
            .next()
            .copied()
            .unwrap_or_else(|| self.ts.last_issued().next())
    }

    /// Drops window entries no in-flight transaction can conflict with: a
    /// committed transaction only matters while some active transaction
    /// started before its commit.
    fn prune_window(&mut self) {
        let min_active = self
            .active
            .keys()
            .next()
            .copied()
            .unwrap_or_else(|| self.ts.last_issued().next());
        while let Some(front) = self.window.front() {
            if front.commit_ts < min_active {
                self.window.pop_front();
            } else {
                break;
            }
        }
    }

    /// Transaction status lookup.
    pub fn status(&self, start_ts: Timestamp) -> TxnStatus {
        self.commit_table.status(start_ts)
    }

    /// Counters.
    pub fn stats(&self) -> SsiStats {
        self.stats
    }

    /// Committed transactions currently in the detection window (memory
    /// footprint metric: SSI must keep whole read/write sets here, where
    /// SI/WSI keep one timestamp per row).
    pub fn window_len(&self) -> usize {
        self.window.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(ids: &[u64]) -> Vec<RowId> {
        ids.iter().map(|&i| RowId(i)).collect()
    }

    #[test]
    fn write_skew_is_refused() {
        // History 2: both read {x, y}; t1 writes x, t2 writes y.
        let mut o = SsiOracle::new();
        let t1 = o.begin();
        let t2 = o.begin();
        assert!(o
            .commit(CommitRequest::new(t1, rows(&[1, 2]), rows(&[1])))
            .is_committed());
        let out = o.commit(CommitRequest::new(t2, rows(&[1, 2]), rows(&[2])));
        assert!(out.is_aborted(), "t2 is a pivot: t1 →rw t2 →rw t1");
        assert_eq!(o.stats().pivot_aborts, 1);
    }

    #[test]
    fn history6_is_admitted_unlike_wsi() {
        // H6: t2 commits first writing x; t1 read x and writes y. WSI
        // aborts t1; SSI sees only an out-conflict on t1 — no danger.
        let mut o = SsiOracle::new();
        let t1 = o.begin();
        let t2 = o.begin();
        assert!(o
            .commit(CommitRequest::new(t2, rows(&[3]), rows(&[1])))
            .is_committed());
        assert!(o
            .commit(CommitRequest::new(t1, rows(&[1]), rows(&[2])))
            .is_committed());
        assert_eq!(o.stats().pivot_aborts, 0);
    }

    #[test]
    fn lost_update_is_refused_by_the_si_base() {
        let mut o = SsiOracle::new();
        let t1 = o.begin();
        let t2 = o.begin();
        assert!(o
            .commit(CommitRequest::new(t1, rows(&[1]), rows(&[1])))
            .is_committed());
        let out = o.commit(CommitRequest::new(t2, rows(&[1]), rows(&[1])));
        assert!(matches!(
            out.abort_reason(),
            Some(AbortReason::WriteWriteConflict { .. })
        ));
    }

    #[test]
    fn read_only_commit_is_free_without_a_dangerous_partner() {
        let mut o = SsiOracle::new();
        let r = o.begin();
        let w = o.begin();
        assert!(o
            .commit(CommitRequest::new(w, vec![], rows(&[1])))
            .is_committed());
        // w has no out-conflict, so r's out-edge to it is harmless.
        assert!(o
            .commit(CommitRequest::new(r, rows(&[1]), vec![]))
            .is_committed());
        assert_eq!(o.stats().read_only_commits, 1);
    }

    #[test]
    fn read_only_anomaly_is_refused() {
        // Fekete/O'Neil/O'Neil: T2 reads {x,y}; T1 reads+writes y and
        // commits; read-only T3 then observes (x0, y1); T2 finally writes
        // x. Serial orders: T2 must precede T1 (T2 →rw T1), T3 must follow
        // T1 (wr) yet precede T2 (T3 →rw T2) — a cycle closed by T3.
        let x = RowId(1);
        let y = RowId(2);
        let mut o = SsiOracle::new();
        let t2 = o.begin();
        let t1 = o.begin();
        assert!(o
            .commit(CommitRequest::new(t1, vec![y], vec![y]))
            .is_committed());
        let t3 = o.begin();
        // T3 →rw T2 will hand T2 an in-conflict at T2's commit; T2 already
        // owes T1 an out-conflict. One of T3/T2 must abort; with T3
        // committing first, the oracle refuses T2 (rule 1: T2 is a pivot).
        assert!(o
            .commit(CommitRequest::new(t3, vec![x, y], vec![]))
            .is_committed());
        let out = o.commit(CommitRequest::new(t2, vec![x, y], vec![x]));
        assert!(out.is_aborted(), "read-only T3 closed the cycle");
    }

    #[test]
    fn read_only_txn_aborts_rather_than_making_a_pivot() {
        // Same anomaly with the read-only transaction committing LAST: the
        // pivot (T2) is already committed and cannot be aborted, so the
        // read-only transaction must be.
        let x = RowId(1);
        let y = RowId(2);
        let mut o = SsiOracle::new();
        let t2 = o.begin();
        let t1 = o.begin();
        assert!(o
            .commit(CommitRequest::new(t1, vec![y], vec![y]))
            .is_committed());
        let t3 = o.begin();
        assert!(o
            .commit(CommitRequest::new(t2, vec![x, y], vec![x]))
            .is_committed());
        let out = o.commit(CommitRequest::new(t3, vec![x, y], vec![]));
        assert!(
            out.is_aborted(),
            "T3 →rw T2 would make committed T2 a pivot"
        );
        assert_eq!(o.stats().pivot_aborts, 1);
    }

    #[test]
    fn three_txn_dangerous_structure_aborts_the_completing_txn() {
        // V →rw U exists (U committed with in-conflict); then U →rw T would
        // make U a pivot: T must abort instead (rule 2).
        let mut o = SsiOracle::new();
        let v = o.begin();
        let u = o.begin();
        let t = o.begin();
        // U commits writing row 1, which V has read (V →rw U forms when V…
        // actually V must commit for the window to know its reads; order:
        // U commits first, then V commits reading 1 → V gets out-conflict,
        // U gets in-conflict.
        assert!(o
            .commit(CommitRequest::new(u, rows(&[2]), rows(&[1])))
            .is_committed());
        assert!(o
            .commit(CommitRequest::new(v, rows(&[1]), rows(&[9])))
            .is_committed());
        // Now T writes row 2, which U read: U →rw T would give U an
        // out-conflict on top of its in-conflict → dangerous, T aborts.
        let out = o.commit(CommitRequest::new(t, rows(&[8]), rows(&[2])));
        assert!(out.is_aborted());
        assert_eq!(o.stats().pivot_aborts, 1);
    }

    #[test]
    fn false_positive_pivot_without_cycle() {
        // T1 →rw T2 and T0 →rw T1 without any cycle: still aborted — the
        // §7.1 "false positives" cost of the pattern check.
        let mut o = SsiOracle::new();
        let t0 = o.begin();
        let t1 = o.begin();
        let t2 = o.begin();
        // T2 commits writing x (row 1), which T1 reads → T1 →rw T2.
        assert!(o
            .commit(CommitRequest::new(t2, vec![], rows(&[1])))
            .is_committed());
        // T0 commits reading y (row 2), which T1 will write → T0 →rw T1.
        assert!(o
            .commit(CommitRequest::new(t0, rows(&[2]), rows(&[7])))
            .is_committed());
        // T1: reads x (out-conflict to T2), writes y (in-conflict from T0):
        // pivot — aborted, although the history is serializable
        // (T0, T1, T2 in that serial order explains every read).
        let out = o.commit(CommitRequest::new(t1, rows(&[1]), rows(&[2])));
        assert!(out.is_aborted());
    }

    #[test]
    fn journal_attributes_pivot_edges_to_committed_partners() {
        // The false-positive pivot schedule, with a journal attached: T1's
        // abort must name T0 (in-edge) and T2 (out-edge) by commit
        // timestamp, and `explain_abort` must resolve both back to the
        // partners' transactions through their Commit events.
        let mut o = SsiOracle::new();
        o.attach_journal(Journal::new());
        let t0 = o.begin();
        let t1 = o.begin();
        let t2 = o.begin();
        let c2 = o
            .commit(CommitRequest::new(t2, vec![], rows(&[1])))
            .commit_ts()
            .expect("t2 commits");
        let c0 = o
            .commit(CommitRequest::new(t0, rows(&[2]), rows(&[7])))
            .commit_ts()
            .expect("t0 commits");
        assert!(o
            .commit(CommitRequest::new(t1, rows(&[1]), rows(&[2])))
            .is_aborted());

        let explanation = o
            .journal()
            .expect("journal attached")
            .explain_abort(t1.raw())
            .expect("abort recorded");
        assert_eq!(explanation.victim, t1.raw());
        assert_eq!(
            explanation.cause,
            Cause::Pivot {
                in_commit_ts: c0.raw(),
                out_commit_ts: c2.raw(),
            }
        );
        let mut culprits = explanation.culprits.clone();
        culprits.sort_unstable();
        let mut expected = vec![t0.raw(), t2.raw()];
        expected.sort_unstable();
        assert_eq!(culprits, expected, "both edge partners attributed");
        // The timeline is the causal join of victim and culprit streams:
        // it must contain the partners' commits and the victim's abort.
        assert!(explanation.timeline.iter().any(|e| e.data
            == EventData::Commit {
                commit_ts: c2.raw()
            }));
        assert!(explanation
            .timeline
            .iter()
            .any(|e| matches!(e.data, EventData::Abort(_)) && e.txn == t1.raw()));
    }

    #[test]
    fn journal_names_the_committed_pivot_on_rule_two_aborts() {
        // Rule 2: committing T would make already-committed U a pivot; the
        // abort's out-edge names U, and the absent in-edge is 0.
        let mut o = SsiOracle::new();
        o.attach_journal(Journal::new());
        let v = o.begin();
        let u = o.begin();
        let t = o.begin();
        let cu = o
            .commit(CommitRequest::new(u, rows(&[2]), rows(&[1])))
            .commit_ts()
            .expect("u commits");
        assert!(o
            .commit(CommitRequest::new(v, rows(&[1]), rows(&[9])))
            .is_committed());
        assert!(o
            .commit(CommitRequest::new(t, rows(&[8]), rows(&[2])))
            .is_aborted());
        let explanation = o
            .journal()
            .expect("journal attached")
            .explain_abort(t.raw())
            .expect("abort recorded");
        assert_eq!(
            explanation.cause,
            Cause::Pivot {
                in_commit_ts: cu.raw(),
                out_commit_ts: 0,
            }
        );
        assert_eq!(explanation.culprits, vec![u.raw()]);
    }

    #[test]
    fn window_prunes_once_no_active_txn_overlaps() {
        let mut o = SsiOracle::new();
        for i in 0..50 {
            let t = o.begin();
            assert!(o
                .commit(CommitRequest::new(t, rows(&[i]), rows(&[i])))
                .is_committed());
        }
        // No active transactions: everything prunable.
        assert_eq!(o.window_len(), 0);
        // With an old reader pinned, the window retains overlapping commits.
        let _pin = o.begin();
        for i in 100..110 {
            let t = o.begin();
            assert!(o
                .commit(CommitRequest::new(t, rows(&[i]), rows(&[i])))
                .is_committed());
        }
        assert_eq!(o.window_len(), 10);
    }

    #[test]
    fn disjoint_transactions_all_commit() {
        let mut o = SsiOracle::new();
        let txns: Vec<Timestamp> = (0..10).map(|_| o.begin()).collect();
        for (i, ts) in txns.into_iter().enumerate() {
            let i = i as u64;
            assert!(o
                .commit(CommitRequest::new(ts, rows(&[i * 2]), rows(&[i * 2 + 1])))
                .is_committed());
        }
        assert_eq!(o.stats().total_aborts(), 0);
    }
}

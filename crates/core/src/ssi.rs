//! Serializable snapshot isolation (SSI) — the §7.1 comparator.
//!
//! Cahill, Röhm, and Fekete ("Serializable isolation for snapshot
//! databases", TODS 2009) make snapshot isolation serializable by detecting
//! the *dangerous structure* that every non-serializable SI execution must
//! contain: a pivot transaction with both an incoming and an outgoing
//! rw-antidependency among concurrent transactions. The paper positions
//! write-snapshot isolation against exactly this approach: SSI's pattern
//! check has lower overhead compared to that of the full dependency
//! graph, but "allows for false positives, which further lowers the
//! concurrency level due to unnecessary aborts" (§7.1).
//!
//! [`SsiOracle`] implements SSI in the same centralized, commit-time
//! validated setting as [`crate::StatusOracleCore`], so the three levels can
//! be compared on identical schedules:
//!
//! * runs the plain SI write-write check first (SSI builds on SI);
//! * tracks, for a sliding window of recently committed transactions, their
//!   read/write sets and conflict flags;
//! * on commit of `T`, finds rw-antidependencies between `T` and
//!   overlapping committed transactions in both directions, and aborts `T`
//!   if the commit would complete a dangerous structure — either `T` itself
//!   becomes a pivot, or an already-committed transaction would.
//!
//! Compared to write-snapshot isolation: SSI admits some histories WSI
//! rejects (the paper's History 6 — an out-edge alone is not dangerous) but
//! pays two set intersections per commit instead of one probe per read row,
//! keeps whole read/write *sets* of recent transactions resident rather
//! than one timestamp per row, and still aborts serializable executions
//! whenever a pivot is not actually on a cycle.

use std::collections::{BTreeMap, HashSet, VecDeque};

use crate::{
    commit_table::{CommitTable, TxnStatus},
    error::{AbortReason, CommitOutcome},
    lastcommit::{LastCommitTable, Probe, UnboundedLastCommit},
    oracle::CommitRequest,
    row::RowId,
    ts::{Timestamp, TimestampSource},
};

/// A committed transaction retained in the SSI detection window.
#[derive(Debug, Clone)]
struct WindowEntry {
    commit_ts: Timestamp,
    reads: HashSet<RowId>,
    writes: HashSet<RowId>,
    /// Some concurrent transaction has an rw-antidependency *into* this one
    /// (someone read data this transaction overwrote).
    in_conflict: bool,
    /// This transaction has an rw-antidependency *out* to a concurrent one
    /// (it read data someone else overwrote).
    out_conflict: bool,
}

/// Counters for the SSI oracle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SsiStats {
    /// Transactions begun.
    pub begins: u64,
    /// Write transactions committed.
    pub commits: u64,
    /// Read-only commits (free, as under SI/WSI).
    pub read_only_commits: u64,
    /// Aborts from the underlying SI write-write check.
    pub ww_aborts: u64,
    /// Aborts from the dangerous-structure rule.
    pub pivot_aborts: u64,
}

impl SsiStats {
    /// Total aborts.
    pub fn total_aborts(&self) -> u64 {
        self.ww_aborts + self.pivot_aborts
    }

    /// Abort rate over decided write transactions.
    pub fn abort_rate(&self) -> f64 {
        let decided = self.commits + self.total_aborts();
        if decided == 0 {
            0.0
        } else {
            self.total_aborts() as f64 / decided as f64
        }
    }
}

/// A centralized, commit-time-validated implementation of Cahill-style SSI.
///
/// # Example: write skew aborts, but History 6 is admitted
///
/// ```
/// use wsi_core::{ssi::SsiOracle, CommitRequest, RowId};
///
/// let mut o = SsiOracle::new();
/// // History 6: r1[x] r2[z] w2[x] w1[y] c2 c1 — serializable, rejected by
/// // WSI, admitted by SSI (txn1 has an out-conflict but no in-conflict).
/// let t1 = o.begin();
/// let t2 = o.begin();
/// assert!(o
///     .commit(CommitRequest::new(t2, vec![RowId(3)], vec![RowId(1)]))
///     .is_committed());
/// assert!(o
///     .commit(CommitRequest::new(t1, vec![RowId(1)], vec![RowId(2)]))
///     .is_committed());
/// ```
#[derive(Debug, Default)]
pub struct SsiOracle {
    ts: TimestampSource,
    last_commit: UnboundedLastCommit,
    commit_table: CommitTable,
    window: VecDeque<WindowEntry>,
    /// Start timestamps of in-flight transactions (window pruning bound).
    active: BTreeMap<Timestamp, ()>,
    stats: SsiStats,
}

impl SsiOracle {
    /// Creates an empty oracle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Issues a start timestamp.
    pub fn begin(&mut self) -> Timestamp {
        self.stats.begins += 1;
        let ts = self.ts.next();
        self.active.insert(ts, ());
        ts
    }

    /// Registers a client abort.
    pub fn abort(&mut self, start_ts: Timestamp) {
        self.active.remove(&start_ts);
        self.commit_table.record_abort(start_ts);
    }

    /// Decides a commit request.
    pub fn commit(&mut self, req: CommitRequest) -> CommitOutcome {
        if req.is_read_only() {
            // Read-only transactions commit freely under SSI too: with
            // commit-time validation they register no sets, so they can
            // never be the pivot (they have no writes, hence no in-edge).
            //
            // Note: this is a *simplification* relative to full SSI, where
            // a read-only transaction can complete a cycle as the third
            // transaction; Cahill's TODS version handles it with read-only
            // anomalies ("receipt" cases). Commit-time validation cannot
            // see a read-only transaction's reads before its commit anyway,
            // and the paper's comparison concerns write transactions.
            self.active.remove(&req.start_ts);
            self.stats.read_only_commits += 1;
            return CommitOutcome::Committed(req.start_ts);
        }

        // --- SI base: first-committer-wins write-write check. ------------
        for &row in &req.write_rows {
            if let Probe::Resident(last) = self.last_commit.probe(row) {
                if last > req.start_ts {
                    self.stats.ww_aborts += 1;
                    self.active.remove(&req.start_ts);
                    self.commit_table.record_abort(req.start_ts);
                    return CommitOutcome::Aborted(AbortReason::WriteWriteConflict {
                        row,
                        committed_at: last,
                    });
                }
            }
        }

        // --- Dangerous-structure detection. -------------------------------
        let reads: HashSet<RowId> = req.read_rows.iter().copied().collect();
        let writes: HashSet<RowId> = req.write_rows.iter().copied().collect();
        // T's partners among committed, temporally overlapping transactions:
        // out: T →rw U (U overwrote something T read, committing during T's
        //      lifetime);
        // in:  U →rw T (U read something T overwrites; U was concurrent).
        let mut out_partners: Vec<usize> = Vec::new();
        let mut in_partners: Vec<usize> = Vec::new();
        for (idx, u) in self.window.iter().enumerate() {
            // Concurrency between T and a committed U: T started before U
            // committed (T commits after every committed U by construction,
            // so the other half of lifetime overlap always holds). A U that
            // committed before T began produces ordinary WR dependencies,
            // not antidependencies.
            if u.commit_ts < req.start_ts {
                continue;
            }
            if u.writes.iter().any(|r| reads.contains(r)) {
                out_partners.push(idx);
            }
            if u.reads.iter().any(|r| writes.contains(r)) {
                in_partners.push(idx);
            }
        }
        let in_t = !in_partners.is_empty();
        let out_t = !out_partners.is_empty();
        // Rule 1: T itself is a pivot.
        let mut dangerous = in_t && out_t;
        // Rule 2: committing T would turn an already-committed transaction
        // into a pivot (it cannot be aborted anymore, so T must be).
        if !dangerous {
            for &idx in &out_partners {
                // T →rw U gives U an in-conflict; dangerous if U already has
                // an out-conflict.
                if self.window[idx].out_conflict {
                    dangerous = true;
                    break;
                }
            }
        }
        if !dangerous {
            for &idx in &in_partners {
                // U →rw T gives U an out-conflict; dangerous if U already
                // has an in-conflict.
                if self.window[idx].in_conflict {
                    dangerous = true;
                    break;
                }
            }
        }
        if dangerous {
            self.stats.pivot_aborts += 1;
            self.active.remove(&req.start_ts);
            self.commit_table.record_abort(req.start_ts);
            return CommitOutcome::Aborted(AbortReason::ReadWriteConflict {
                row: *reads
                    .iter()
                    .next()
                    .or_else(|| writes.iter().next())
                    .expect("write txn has rows"),
                committed_at: req.start_ts,
            });
        }

        // --- Commit: persist flags and state. -----------------------------
        for &idx in &out_partners {
            self.window[idx].in_conflict = true;
        }
        for &idx in &in_partners {
            self.window[idx].out_conflict = true;
        }
        let commit_ts = self.ts.next();
        for &row in &req.write_rows {
            self.last_commit.record(row, commit_ts);
        }
        self.commit_table.record_commit(req.start_ts, commit_ts);
        self.active.remove(&req.start_ts);
        self.window.push_back(WindowEntry {
            commit_ts,
            reads,
            writes,
            // T's own flags, persisted for future commits against it.
            in_conflict: in_t,
            out_conflict: out_t,
        });
        self.prune_window();
        self.stats.commits += 1;
        CommitOutcome::Committed(commit_ts)
    }

    /// Drops window entries no in-flight transaction can conflict with: a
    /// committed transaction only matters while some active transaction
    /// started before its commit.
    fn prune_window(&mut self) {
        let min_active = self
            .active
            .keys()
            .next()
            .copied()
            .unwrap_or_else(|| self.ts.last_issued().next());
        while let Some(front) = self.window.front() {
            if front.commit_ts < min_active {
                self.window.pop_front();
            } else {
                break;
            }
        }
    }

    /// Transaction status lookup.
    pub fn status(&self, start_ts: Timestamp) -> TxnStatus {
        self.commit_table.status(start_ts)
    }

    /// Counters.
    pub fn stats(&self) -> SsiStats {
        self.stats
    }

    /// Committed transactions currently in the detection window (memory
    /// footprint metric: SSI must keep whole read/write sets here, where
    /// SI/WSI keep one timestamp per row).
    pub fn window_len(&self) -> usize {
        self.window.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(ids: &[u64]) -> Vec<RowId> {
        ids.iter().map(|&i| RowId(i)).collect()
    }

    #[test]
    fn write_skew_is_refused() {
        // History 2: both read {x, y}; t1 writes x, t2 writes y.
        let mut o = SsiOracle::new();
        let t1 = o.begin();
        let t2 = o.begin();
        assert!(o
            .commit(CommitRequest::new(t1, rows(&[1, 2]), rows(&[1])))
            .is_committed());
        let out = o.commit(CommitRequest::new(t2, rows(&[1, 2]), rows(&[2])));
        assert!(out.is_aborted(), "t2 is a pivot: t1 →rw t2 →rw t1");
        assert_eq!(o.stats().pivot_aborts, 1);
    }

    #[test]
    fn history6_is_admitted_unlike_wsi() {
        // H6: t2 commits first writing x; t1 read x and writes y. WSI
        // aborts t1; SSI sees only an out-conflict on t1 — no danger.
        let mut o = SsiOracle::new();
        let t1 = o.begin();
        let t2 = o.begin();
        assert!(o
            .commit(CommitRequest::new(t2, rows(&[3]), rows(&[1])))
            .is_committed());
        assert!(o
            .commit(CommitRequest::new(t1, rows(&[1]), rows(&[2])))
            .is_committed());
        assert_eq!(o.stats().pivot_aborts, 0);
    }

    #[test]
    fn lost_update_is_refused_by_the_si_base() {
        let mut o = SsiOracle::new();
        let t1 = o.begin();
        let t2 = o.begin();
        assert!(o
            .commit(CommitRequest::new(t1, rows(&[1]), rows(&[1])))
            .is_committed());
        let out = o.commit(CommitRequest::new(t2, rows(&[1]), rows(&[1])));
        assert!(matches!(
            out.abort_reason(),
            Some(AbortReason::WriteWriteConflict { .. })
        ));
    }

    #[test]
    fn read_only_transactions_never_abort() {
        let mut o = SsiOracle::new();
        let r = o.begin();
        let w = o.begin();
        assert!(o
            .commit(CommitRequest::new(w, vec![], rows(&[1])))
            .is_committed());
        assert!(o
            .commit(CommitRequest::new(r, rows(&[1]), vec![]))
            .is_committed());
        assert_eq!(o.stats().read_only_commits, 1);
    }

    #[test]
    fn three_txn_dangerous_structure_aborts_the_completing_txn() {
        // V →rw U exists (U committed with in-conflict); then U →rw T would
        // make U a pivot: T must abort instead (rule 2).
        let mut o = SsiOracle::new();
        let v = o.begin();
        let u = o.begin();
        let t = o.begin();
        // U commits writing row 1, which V has read (V →rw U forms when V…
        // actually V must commit for the window to know its reads; order:
        // U commits first, then V commits reading 1 → V gets out-conflict,
        // U gets in-conflict.
        assert!(o
            .commit(CommitRequest::new(u, rows(&[2]), rows(&[1])))
            .is_committed());
        assert!(o
            .commit(CommitRequest::new(v, rows(&[1]), rows(&[9])))
            .is_committed());
        // Now T writes row 2, which U read: U →rw T would give U an
        // out-conflict on top of its in-conflict → dangerous, T aborts.
        let out = o.commit(CommitRequest::new(t, rows(&[8]), rows(&[2])));
        assert!(out.is_aborted());
        assert_eq!(o.stats().pivot_aborts, 1);
    }

    #[test]
    fn false_positive_pivot_without_cycle() {
        // T1 →rw T2 and T0 →rw T1 without any cycle: still aborted — the
        // §7.1 "false positives" cost of the pattern check.
        let mut o = SsiOracle::new();
        let t0 = o.begin();
        let t1 = o.begin();
        let t2 = o.begin();
        // T2 commits writing x (row 1), which T1 reads → T1 →rw T2.
        assert!(o
            .commit(CommitRequest::new(t2, vec![], rows(&[1])))
            .is_committed());
        // T0 commits reading y (row 2), which T1 will write → T0 →rw T1.
        assert!(o
            .commit(CommitRequest::new(t0, rows(&[2]), rows(&[7])))
            .is_committed());
        // T1: reads x (out-conflict to T2), writes y (in-conflict from T0):
        // pivot — aborted, although the history is serializable
        // (T0, T1, T2 in that serial order explains every read).
        let out = o.commit(CommitRequest::new(t1, rows(&[1]), rows(&[2])));
        assert!(out.is_aborted());
    }

    #[test]
    fn window_prunes_once_no_active_txn_overlaps() {
        let mut o = SsiOracle::new();
        for i in 0..50 {
            let t = o.begin();
            assert!(o
                .commit(CommitRequest::new(t, rows(&[i]), rows(&[i])))
                .is_committed());
        }
        // No active transactions: everything prunable.
        assert_eq!(o.window_len(), 0);
        // With an old reader pinned, the window retains overlapping commits.
        let _pin = o.begin();
        for i in 100..110 {
            let t = o.begin();
            assert!(o
                .commit(CommitRequest::new(t, rows(&[i]), rows(&[i])))
                .is_committed());
        }
        assert_eq!(o.window_len(), 10);
    }

    #[test]
    fn disjoint_transactions_all_commit() {
        let mut o = SsiOracle::new();
        let txns: Vec<Timestamp> = (0..10).map(|_| o.begin()).collect();
        for (i, ts) in txns.into_iter().enumerate() {
            let i = i as u64;
            assert!(o
                .commit(CommitRequest::new(ts, rows(&[i * 2]), rows(&[i * 2 + 1])))
                .is_committed());
        }
        assert_eq!(o.stats().total_aborts(), 0);
    }
}

//! Isolation levels and the overlap predicates that define conflicts.
//!
//! Section 2 of the paper defines a *write-write* conflict between `txn_i`
//! and `txn_j` as spatial overlap (both write row `r`) plus temporal overlap
//! (`T_s(i) < T_c(j) ∧ T_s(j) < T_c(i)`). Section 4.1 defines a *read-write*
//! conflict as rw-spatial overlap (`txn_j` writes a row `txn_i` read) plus
//! rw-temporal overlap (`T_s(i) < T_c(j) < T_c(i)`, i.e. `txn_j` commits
//! during `txn_i`'s lifetime). These predicates are exposed here both for
//! the oracle's incremental checks and for the `wsi-history` crate, which
//! evaluates them over whole histories.

use crate::ts::Timestamp;

/// The isolation level enforced by a status oracle or transaction manager.
///
/// Both levels give every transaction a consistent read snapshot determined
/// by its start timestamp; they differ only in which conflicts abort a
/// transaction at commit time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IsolationLevel {
    /// Classic snapshot isolation: abort on write-write conflicts
    /// (Algorithm 1). Permits write skew; not serializable.
    Snapshot,
    /// Write-snapshot isolation: abort on read-write conflicts
    /// (Algorithm 2). Serializable (paper, Theorem 1).
    WriteSnapshot,
}

impl IsolationLevel {
    /// Returns `true` for levels that are serializable.
    ///
    /// Snapshot isolation admits non-serializable histories such as write
    /// skew (paper, History 2); write-snapshot isolation is proved
    /// serializable by shifting every write transaction to its commit point
    /// and every read-only transaction to its start point (paper, §4.2).
    pub fn is_serializable(self) -> bool {
        match self {
            IsolationLevel::Snapshot => false,
            IsolationLevel::WriteSnapshot => true,
        }
    }

    /// A short human-readable name ("si" / "wsi"), used in benchmark output.
    pub fn short_name(self) -> &'static str {
        match self {
            IsolationLevel::Snapshot => "si",
            IsolationLevel::WriteSnapshot => "wsi",
        }
    }
}

impl std::fmt::Display for IsolationLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IsolationLevel::Snapshot => write!(f, "snapshot isolation"),
            IsolationLevel::WriteSnapshot => write!(f, "write-snapshot isolation"),
        }
    }
}

/// Temporal-overlap predicate of snapshot isolation (§2):
/// `T_s(i) < T_c(j) ∧ T_s(j) < T_c(i)` — the transactions' `[start, commit]`
/// intervals intersect.
///
/// # Example
///
/// ```
/// use wsi_core::{temporal_overlap, Timestamp};
///
/// // [1,4] and [2,5] overlap; [1,2] and [3,4] do not.
/// assert!(temporal_overlap(
///     Timestamp(1), Timestamp(4),
///     Timestamp(2), Timestamp(5),
/// ));
/// assert!(!temporal_overlap(
///     Timestamp(1), Timestamp(2),
///     Timestamp(3), Timestamp(4),
/// ));
/// ```
#[inline]
pub fn temporal_overlap(
    start_i: Timestamp,
    commit_i: Timestamp,
    start_j: Timestamp,
    commit_j: Timestamp,
) -> bool {
    start_i < commit_j && start_j < commit_i
}

/// rw-temporal-overlap predicate of write-snapshot isolation (§4.1):
/// `T_s(i) < T_c(j) < T_c(i)` — `txn_j` commits during `txn_i`'s lifetime.
///
/// Note the asymmetry: unlike [`temporal_overlap`], this predicate is *not*
/// symmetric in `i` and `j`. In the paper's Figure 2, `txn_n` and `txn_c''`
/// have (symmetric) temporal overlap but no rw-temporal overlap, because
/// `txn_c''` commits after `txn_n` does.
#[inline]
pub fn rw_temporal_overlap(start_i: Timestamp, commit_i: Timestamp, commit_j: Timestamp) -> bool {
    start_i < commit_j && commit_j < commit_i
}

/// Spatial-overlap predicate of snapshot isolation (§2): both transactions
/// write some common row.
///
/// The row sets are given as slices of sorted-or-unsorted row identifiers;
/// complexity is O(|a|·|b|) which is fine for the short row lists of OLTP
/// transactions. The incremental `lastCommit` check in
/// [`crate::StatusOracleCore`] replaces this for the oracle's hot path.
pub fn spatial_overlap(writes_i: &[crate::RowId], writes_j: &[crate::RowId]) -> bool {
    writes_i.iter().any(|r| writes_j.contains(r))
}

/// rw-spatial-overlap predicate of write-snapshot isolation (§4.1): `txn_j`
/// writes into a row that `txn_i` reads.
pub fn rw_spatial_overlap(reads_i: &[crate::RowId], writes_j: &[crate::RowId]) -> bool {
    reads_i.iter().any(|r| writes_j.contains(r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RowId;

    const fn ts(v: u64) -> Timestamp {
        Timestamp(v)
    }

    #[test]
    fn temporal_overlap_is_symmetric() {
        for (si, ci, sj, cj) in [(1, 4, 2, 5), (1, 10, 2, 3), (5, 6, 1, 9)] {
            assert_eq!(
                temporal_overlap(ts(si), ts(ci), ts(sj), ts(cj)),
                temporal_overlap(ts(sj), ts(cj), ts(si), ts(ci)),
            );
        }
    }

    #[test]
    fn disjoint_intervals_do_not_overlap() {
        assert!(!temporal_overlap(ts(1), ts(2), ts(3), ts(4)));
        assert!(!temporal_overlap(ts(3), ts(4), ts(1), ts(2)));
    }

    #[test]
    fn nested_intervals_overlap() {
        assert!(temporal_overlap(ts(1), ts(10), ts(3), ts(4)));
    }

    #[test]
    fn rw_temporal_requires_commit_inside_lifetime() {
        // txn_i = [2, 8]; txn_j commits at 5: inside.
        assert!(rw_temporal_overlap(ts(2), ts(8), ts(5)));
        // txn_j commits at 9: after txn_i's commit — the Figure 2 txn_c' case.
        assert!(!rw_temporal_overlap(ts(2), ts(8), ts(9)));
        // txn_j commits at 1: before txn_i started — the Figure 2 txn_c'' case
        // (from txn_i's perspective; txn_i read the committed value).
        assert!(!rw_temporal_overlap(ts(2), ts(8), ts(1)));
    }

    #[test]
    fn rw_temporal_is_strict_at_endpoints() {
        assert!(!rw_temporal_overlap(ts(2), ts(8), ts(2)));
        assert!(!rw_temporal_overlap(ts(2), ts(8), ts(8)));
    }

    #[test]
    fn spatial_predicates() {
        let a = [RowId(1), RowId(2)];
        let b = [RowId(2), RowId(3)];
        let c = [RowId(4)];
        assert!(spatial_overlap(&a, &b));
        assert!(!spatial_overlap(&a, &c));
        assert!(rw_spatial_overlap(&a, &b));
        assert!(!rw_spatial_overlap(&c, &a));
        assert!(!rw_spatial_overlap(&[], &a));
        assert!(!rw_spatial_overlap(&a, &[]));
    }

    #[test]
    fn level_properties() {
        assert!(!IsolationLevel::Snapshot.is_serializable());
        assert!(IsolationLevel::WriteSnapshot.is_serializable());
        assert_eq!(IsolationLevel::Snapshot.short_name(), "si");
        assert_eq!(IsolationLevel::WriteSnapshot.short_name(), "wsi");
        assert_eq!(
            IsolationLevel::WriteSnapshot.to_string(),
            "write-snapshot isolation"
        );
    }
}

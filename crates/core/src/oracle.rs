//! The status-oracle state machine: Algorithms 1, 2, and 3.
//!
//! [`StatusOracleCore`] is the single-threaded core shared by every
//! embedding in this workspace. It issues start timestamps, decides commit
//! requests by running the paper's conflict-detection algorithms against a
//! [`LastCommitTable`], and maintains the [`CommitTable`] that readers use to
//! resolve snapshot visibility.
//!
//! One state machine serves both isolation levels because Algorithms 1 and 2
//! differ in exactly one place: which row set is checked against
//! `lastCommit` — the *write* set under snapshot isolation (write-write
//! conflicts) or the *read* set under write-snapshot isolation (read-write
//! conflicts). Both record the write set after a successful commit.
//! Constructing the oracle with a bounded table turns either algorithm into
//! its memory-bounded Algorithm 3 variant with `T_max` pessimistic aborts.

use std::sync::Arc;

use crate::{
    commit_table::{CommitTable, TxnStatus},
    error::{AbortReason, CommitOutcome},
    lastcommit::{BoundedLastCommit, LastCommitTable, Probe, UnboundedLastCommit},
    policy::IsolationLevel,
    row::{RowId, RowRange},
    ts::{SharedTimestampSource, Timestamp, TimestampSource},
};

/// A commit request, as sent by a client to the status oracle.
///
/// Under snapshot isolation only `write_rows` matters and clients may leave
/// `read_rows` empty (Algorithm 1); under write-snapshot isolation both sets
/// are submitted (Algorithm 2). Read-only transactions submit both sets
/// empty and always commit without any oracle computation (§5.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitRequest {
    /// The transaction's start timestamp, as issued by [`StatusOracleCore::begin`].
    pub start_ts: Timestamp,
    /// Identifiers of all rows the transaction read (`R_r`).
    pub read_rows: Vec<RowId>,
    /// Identifiers of all rows the transaction modified (`R_w`).
    pub write_rows: Vec<RowId>,
    /// Compact, over-approximated read ranges (§5.2): an analytical
    /// transaction that scanned row ranges submits them here instead of
    /// enumerating millions of read rows. Checked only under
    /// write-snapshot isolation; over-approximation can add aborts but
    /// never admits a conflicting commit.
    pub read_ranges: Vec<RowRange>,
}

impl CommitRequest {
    /// Creates a commit request, sorting and deduplicating both row sets.
    ///
    /// Clients naturally produce duplicates (a transaction that reads the
    /// same row twice reports it twice); probing or recording a row more
    /// than once is wasted work that also inflates the oracle's
    /// `rows_checked`/`rows_recorded` counters, distorting the §6.3
    /// read-to-write load comparison. Sorting additionally gives the
    /// sharded oracle its canonical lock order for free.
    pub fn new(start_ts: Timestamp, mut read_rows: Vec<RowId>, mut write_rows: Vec<RowId>) -> Self {
        read_rows.sort_unstable();
        read_rows.dedup();
        write_rows.sort_unstable();
        write_rows.dedup();
        CommitRequest {
            start_ts,
            read_rows,
            write_rows,
            read_ranges: Vec::new(),
        }
    }

    /// Attaches compact read ranges (§5.2 analytical transactions).
    #[must_use]
    pub fn with_read_ranges(mut self, ranges: Vec<RowRange>) -> Self {
        self.read_ranges = ranges;
        self
    }

    /// Creates a read-only commit request (both sets empty).
    pub fn read_only(start_ts: Timestamp) -> Self {
        CommitRequest::new(start_ts, Vec::new(), Vec::new())
    }

    /// Returns `true` if the transaction performed no writes.
    ///
    /// Read-only transactions are exempt from conflict checking and never
    /// abort (§4.1, condition 3 of the read-write conflict definition).
    #[inline]
    pub fn is_read_only(&self) -> bool {
        self.write_rows.is_empty()
    }
}

/// Counters describing the oracle's activity, used by benchmarks and by the
/// simulator's CPU cost model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OracleStats {
    /// Transactions started.
    pub begins: u64,
    /// Write transactions committed.
    pub commits: u64,
    /// Read-only transactions committed (fast path, no conflict check).
    pub read_only_commits: u64,
    /// Aborts due to a write-write conflict.
    pub ww_aborts: u64,
    /// Aborts due to a read-write conflict.
    pub rw_aborts: u64,
    /// Pessimistic aborts due to `T_max` (Algorithm 3 only).
    pub tmax_aborts: u64,
    /// Aborts explicitly requested by clients.
    pub client_aborts: u64,
    /// `lastCommit` probes performed (memory items loaded for checking).
    pub rows_checked: u64,
    /// `lastCommit` records written (memory items loaded for updating).
    pub rows_recorded: u64,
    /// Range probes performed for analytical read sets (§5.2).
    pub ranges_checked: u64,
    /// `lastCommit` rows evicted into `T_max` (Algorithm 3 only; always 0
    /// for unbounded tables).
    pub evictions: u64,
}

impl OracleStats {
    /// Total aborts of write transactions for any reason.
    pub fn total_aborts(&self) -> u64 {
        self.ww_aborts + self.rw_aborts + self.tmax_aborts + self.client_aborts
    }

    /// Abort rate over decided write transactions (0 when none decided).
    pub fn abort_rate(&self) -> f64 {
        let decided = self.commits + self.total_aborts();
        if decided == 0 {
            0.0
        } else {
            self.total_aborts() as f64 / decided as f64
        }
    }
}

/// Lock-free counters backing [`OracleStats`].
///
/// Each field is a sharded [`wsi_obs::Counter`]; `Clone` produces a handle
/// onto the **same** counters, so an embedder can keep a clone outside the
/// oracle's critical section and read statistics without taking the lock
/// that serializes the oracle itself (the mutex in `wsi-store`, the event
/// loop in `wsi-oracle`). [`OracleCounters::view`] folds the counters into a
/// plain [`OracleStats`] value at any time, with no synchronization beyond
/// relaxed atomic loads.
#[derive(Debug, Clone, Default)]
pub struct OracleCounters {
    /// Transactions started.
    pub begins: wsi_obs::Counter,
    /// Write transactions decided committed (including later-overturned).
    pub commits: wsi_obs::Counter,
    /// Commits overturned because durability failed before publication
    /// (see [`StatusOracleCore::abort_after_decide`]). The [`OracleStats`]
    /// `commits` view subtracts these; keeping decide and overturn as
    /// separate monotonic counters keeps every counter append-only, which
    /// exposition formats (Prometheus) require of counters.
    pub commits_overturned: wsi_obs::Counter,
    /// Read-only transactions committed on the no-computation fast path.
    pub read_only_commits: wsi_obs::Counter,
    /// Aborts due to a write-write conflict.
    pub ww_aborts: wsi_obs::Counter,
    /// Aborts due to a read-write conflict.
    pub rw_aborts: wsi_obs::Counter,
    /// Pessimistic aborts due to `T_max` (Algorithm 3 only).
    pub tmax_aborts: wsi_obs::Counter,
    /// Aborts explicitly requested by clients.
    pub client_aborts: wsi_obs::Counter,
    /// `lastCommit` probes performed (memory items loaded for checking).
    pub rows_checked: wsi_obs::Counter,
    /// `lastCommit` records written (memory items loaded for updating).
    pub rows_recorded: wsi_obs::Counter,
    /// Range probes performed for analytical read sets (§5.2).
    pub ranges_checked: wsi_obs::Counter,
    /// `lastCommit` rows evicted into `T_max` (Algorithm 3 only).
    pub evictions: wsi_obs::Counter,
}

impl OracleCounters {
    /// Folds the live counters into a plain [`OracleStats`] value.
    ///
    /// `commits` is reported net of overturned commits, matching the
    /// pre-counter semantics where an overturn decremented the commit count.
    pub fn view(&self) -> OracleStats {
        OracleStats {
            begins: self.begins.get(),
            commits: self
                .commits
                .get()
                .saturating_sub(self.commits_overturned.get()),
            read_only_commits: self.read_only_commits.get(),
            ww_aborts: self.ww_aborts.get(),
            rw_aborts: self.rw_aborts.get(),
            tmax_aborts: self.tmax_aborts.get(),
            client_aborts: self.client_aborts.get(),
            rows_checked: self.rows_checked.get(),
            rows_recorded: self.rows_recorded.get(),
            ranges_checked: self.ranges_checked.get(),
            evictions: self.evictions.get(),
        }
    }

    /// A copy with fresh counters frozen at the current values, sharing no
    /// state with `self` — the value-semantics counterpart of `Clone` (which
    /// shares), used when cloning an oracle into an independent replica.
    pub fn detached_copy(&self) -> OracleCounters {
        OracleCounters {
            begins: self.begins.detached_copy(),
            commits: self.commits.detached_copy(),
            commits_overturned: self.commits_overturned.detached_copy(),
            read_only_commits: self.read_only_commits.detached_copy(),
            ww_aborts: self.ww_aborts.detached_copy(),
            rw_aborts: self.rw_aborts.detached_copy(),
            tmax_aborts: self.tmax_aborts.detached_copy(),
            client_aborts: self.client_aborts.detached_copy(),
            rows_checked: self.rows_checked.detached_copy(),
            rows_recorded: self.rows_recorded.detached_copy(),
            ranges_checked: self.ranges_checked.detached_copy(),
            evictions: self.evictions.detached_copy(),
        }
    }

    /// Registers every counter in `registry` under `oracle_*` names so the
    /// oracle shows up in metric exposition alongside the embedder's own
    /// series.
    pub fn register_in(&self, registry: &wsi_obs::Registry) {
        let entries: [(&str, &wsi_obs::Counter); 12] = [
            ("oracle_begins_total", &self.begins),
            ("oracle_commits_total", &self.commits),
            ("oracle_commits_overturned_total", &self.commits_overturned),
            ("oracle_read_only_commits_total", &self.read_only_commits),
            ("oracle_ww_aborts_total", &self.ww_aborts),
            ("oracle_rw_aborts_total", &self.rw_aborts),
            ("oracle_tmax_aborts_total", &self.tmax_aborts),
            ("oracle_client_aborts_total", &self.client_aborts),
            ("oracle_rows_checked_total", &self.rows_checked),
            ("oracle_rows_recorded_total", &self.rows_recorded),
            ("oracle_ranges_checked_total", &self.ranges_checked),
            ("oracle_lastcommit_evictions_total", &self.evictions),
        ];
        for (name, counter) in entries {
            registry.register_counter(name, counter);
        }
    }
}

/// Where the oracle draws timestamps from.
///
/// `Local` is the classic single-threaded counter owned by the oracle.
/// `Shared` delegates to a lock-free counter owned by the embedder, so
/// threads can issue *start* timestamps without entering the oracle's
/// critical section while *commit* timestamps (issued inside the critical
/// section) still interleave correctly on the same counter — the total order
/// the temporal-overlap predicates require.
#[derive(Debug, Clone)]
enum TsMode {
    Local(TimestampSource),
    Shared(Arc<SharedTimestampSource>),
}

impl TsMode {
    #[inline]
    fn next(&mut self) -> Timestamp {
        match self {
            TsMode::Local(src) => src.next(),
            TsMode::Shared(src) => src.next(),
        }
    }

    #[inline]
    fn last_issued(&self) -> Timestamp {
        match self {
            TsMode::Local(src) => src.last_issued(),
            TsMode::Shared(src) => src.last_issued(),
        }
    }

    fn advance_to(&mut self, bound: Timestamp) {
        match self {
            TsMode::Local(src) => src.advance_to(bound),
            TsMode::Shared(src) => src.advance_to(bound),
        }
    }
}

/// A `lastCommit` table of either flavor. Shared with the sharded oracle
/// (`crate::sharded`), whose shards are each one of these.
#[derive(Debug, Clone)]
pub(crate) enum Table {
    Unbounded(UnboundedLastCommit),
    Bounded(BoundedLastCommit),
}

impl Table {
    pub(crate) fn probe(&self, row: RowId) -> Probe {
        match self {
            Table::Unbounded(t) => t.probe(row),
            Table::Bounded(t) => t.probe(row),
        }
    }

    pub(crate) fn record(&mut self, row: RowId, ts: Timestamp) -> usize {
        match self {
            Table::Unbounded(t) => t.record(row, ts),
            Table::Bounded(t) => t.record(row, ts),
        }
    }

    pub(crate) fn len(&self) -> usize {
        match self {
            Table::Unbounded(t) => t.len(),
            Table::Bounded(t) => t.len(),
        }
    }

    pub(crate) fn t_max(&self) -> Timestamp {
        match self {
            Table::Unbounded(_) => Timestamp::ZERO,
            Table::Bounded(t) => t.t_max(),
        }
    }

    pub(crate) fn probe_range(&self, range: RowRange) -> Probe {
        match self {
            Table::Unbounded(t) => t.probe_range(range.start, range.end),
            Table::Bounded(t) => t.probe_range(range.start, range.end),
        }
    }
}

/// The per-row conflict predicate shared by every oracle shell (lines 2–9 of
/// Algorithms 1–3): given the probe result for one checked row, decide
/// whether the transaction may proceed. Factored out so the single-threaded
/// and sharded oracles cannot drift apart.
pub(crate) fn check_row_probe(
    level: IsolationLevel,
    row: RowId,
    probe: Probe,
    start_ts: Timestamp,
) -> std::result::Result<(), AbortReason> {
    match probe {
        Probe::Resident(last) if last > start_ts => Err(match level {
            IsolationLevel::Snapshot => AbortReason::WriteWriteConflict {
                row,
                committed_at: last,
            },
            IsolationLevel::WriteSnapshot => AbortReason::ReadWriteConflict {
                row,
                committed_at: last,
            },
        }),
        Probe::Resident(_) | Probe::NeverWritten => Ok(()),
        Probe::MaybeEvicted { t_max } if t_max > start_ts => {
            // Algorithm 3, line 8: the row's state was evicted and a
            // conflict cannot be ruled out — abort pessimistically.
            Err(AbortReason::TmaxExceeded { start_ts, t_max })
        }
        Probe::MaybeEvicted { .. } => Ok(()),
    }
}

/// The §5.2 range-probe conflict predicate, shared like
/// [`check_row_probe`]. Ranges are only checked under write-snapshot
/// isolation; the conflicting "row" reported is the range start, which
/// identifies the scan.
pub(crate) fn check_range_probe(
    range: RowRange,
    probe: Probe,
    start_ts: Timestamp,
) -> std::result::Result<(), AbortReason> {
    match probe {
        Probe::Resident(last) if last > start_ts => Err(AbortReason::ReadWriteConflict {
            row: range.start,
            committed_at: last,
        }),
        Probe::MaybeEvicted { t_max } if t_max > start_ts => {
            Err(AbortReason::TmaxExceeded { start_ts, t_max })
        }
        Probe::Resident(_) | Probe::NeverWritten | Probe::MaybeEvicted { .. } => Ok(()),
    }
}

/// The status oracle's deterministic, single-threaded state machine.
///
/// Embedders serialize access (a mutex in `wsi-store`, the event loop in
/// `wsi-oracle`); the paper's implementation likewise "executes the conflict
/// detection algorithm in a critical section" (§6.3).
///
/// # Example: write skew is admitted by SI and refused by WSI
///
/// ```
/// use wsi_core::{CommitRequest, IsolationLevel, RowId, StatusOracleCore};
///
/// let (x, y) = (RowId(1), RowId(2));
/// for (level, expect_both_commit) in [
///     (IsolationLevel::Snapshot, true),
///     (IsolationLevel::WriteSnapshot, false),
/// ] {
///     let mut o = StatusOracleCore::unbounded(level);
///     let t1 = o.begin();
///     let t2 = o.begin();
///     // History 2: r1[x] r1[y] r2[x] r2[y] w1[x] w2[y] c1 c2.
///     let c1 = o.commit(CommitRequest::new(t1, vec![x, y], vec![x]));
///     let c2 = o.commit(CommitRequest::new(t2, vec![x, y], vec![y]));
///     assert!(c1.is_committed());
///     assert_eq!(c2.is_committed(), expect_both_commit);
/// }
/// ```
#[derive(Debug)]
pub struct StatusOracleCore {
    level: IsolationLevel,
    ts: TsMode,
    last_commit: Table,
    commit_table: CommitTable,
    counters: OracleCounters,
}

impl Clone for StatusOracleCore {
    /// Clones into an independent replica: the counters are detached copies
    /// frozen at their current values, not shared handles, preserving the
    /// value semantics the struct had when statistics were plain integers.
    fn clone(&self) -> Self {
        StatusOracleCore {
            level: self.level,
            ts: self.ts.clone(),
            last_commit: self.last_commit.clone(),
            commit_table: self.commit_table.clone(),
            counters: self.counters.detached_copy(),
        }
    }
}

impl StatusOracleCore {
    /// Creates an oracle with an unbounded `lastCommit` table
    /// (Algorithm 1 for [`IsolationLevel::Snapshot`], Algorithm 2 for
    /// [`IsolationLevel::WriteSnapshot`]).
    pub fn unbounded(level: IsolationLevel) -> Self {
        StatusOracleCore {
            level,
            ts: TsMode::Local(TimestampSource::new()),
            last_commit: Table::Unbounded(UnboundedLastCommit::new()),
            commit_table: CommitTable::new(),
            counters: OracleCounters::default(),
        }
    }

    /// Creates an unbounded oracle that draws timestamps from a lock-free
    /// counter shared with the embedder.
    ///
    /// Concurrent embedders issue start timestamps directly from `ts`
    /// (outside any critical section) and leave commit-timestamp issue to the
    /// oracle, whose own critical section guarantees commit timestamps still
    /// interleave with starts in one total order. Callers issuing starts
    /// externally should count begins themselves; [`StatusOracleCore::begin`]
    /// still works and still counts.
    pub fn unbounded_shared(level: IsolationLevel, ts: Arc<SharedTimestampSource>) -> Self {
        StatusOracleCore {
            level,
            ts: TsMode::Shared(ts),
            last_commit: Table::Unbounded(UnboundedLastCommit::new()),
            commit_table: CommitTable::new(),
            counters: OracleCounters::default(),
        }
    }

    /// Creates a bounded (Algorithm 3) oracle over a shared lock-free
    /// timestamp counter; see [`StatusOracleCore::unbounded_shared`].
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn bounded_shared(
        level: IsolationLevel,
        capacity: usize,
        ts: Arc<SharedTimestampSource>,
    ) -> Self {
        StatusOracleCore {
            level,
            ts: TsMode::Shared(ts),
            last_commit: Table::Bounded(BoundedLastCommit::with_capacity(capacity)),
            commit_table: CommitTable::new(),
            counters: OracleCounters::default(),
        }
    }

    /// Creates an oracle whose `lastCommit` table retains at most `capacity`
    /// rows, evicting with `T_max` tracking (Algorithm 3).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn bounded(level: IsolationLevel, capacity: usize) -> Self {
        StatusOracleCore {
            level,
            ts: TsMode::Local(TimestampSource::new()),
            last_commit: Table::Bounded(BoundedLastCommit::with_capacity(capacity)),
            commit_table: CommitTable::new(),
            counters: OracleCounters::default(),
        }
    }

    /// The isolation level this oracle enforces.
    #[inline]
    pub fn level(&self) -> IsolationLevel {
        self.level
    }

    /// Issues a start timestamp for a new transaction.
    pub fn begin(&mut self) -> Timestamp {
        self.counters.begins.inc();
        self.ts.next()
    }

    /// Decides a commit request (Algorithms 1–3).
    ///
    /// Read-only requests commit immediately: the paper shows a read-only
    /// transaction is equivalent to one shifted to its start point
    /// (Figure 3), so it needs no commit timestamp and no conflict check; the
    /// returned outcome carries the transaction's start timestamp.
    ///
    /// For write transactions the configured row set is probed against
    /// `lastCommit`; on success a fresh commit timestamp is issued, the write
    /// set is recorded, and the commit is registered in the commit table. On
    /// conflict the transaction is registered as aborted.
    pub fn commit(&mut self, req: CommitRequest) -> CommitOutcome {
        if req.is_read_only() {
            // §5.1: both sets are submitted empty; the oracle commits without
            // performing any computation for the transaction.
            self.counters.read_only_commits.inc();
            return CommitOutcome::Committed(req.start_ts);
        }
        match self.check(&req) {
            Ok(()) => CommitOutcome::Committed(self.commit_unchecked(&req)),
            Err(reason) => self.register_abort(req.start_ts, reason),
        }
    }

    /// Runs the conflict check of Algorithms 1–3 **without mutating state**.
    ///
    /// Embedders that must persist the commit decision to a write-ahead log
    /// *before* exposing it split the commit into `check` +
    /// [`StatusOracleCore::commit_unchecked`], logging in between while the
    /// critical section is held. With a local timestamp source the commit
    /// timestamp the subsequent `commit_unchecked` will assign is
    /// `self.last_issued_ts().next()`; with a shared source concurrent starts
    /// may intervene, so the timestamp is only known once issued.
    ///
    /// Read-only requests trivially pass.
    pub fn check(&mut self, req: &CommitRequest) -> std::result::Result<(), AbortReason> {
        if req.is_read_only() {
            return Ok(());
        }
        let check_rows: &[RowId] = match self.level {
            IsolationLevel::Snapshot => &req.write_rows,
            IsolationLevel::WriteSnapshot => &req.read_rows,
        };
        for &row in check_rows {
            self.counters.rows_checked.inc();
            check_row_probe(self.level, row, self.last_commit.probe(row), req.start_ts)?;
        }
        if self.level == IsolationLevel::WriteSnapshot {
            for &range in &req.read_ranges {
                self.counters.ranges_checked.inc();
                check_range_probe(range, self.last_commit.probe_range(range), req.start_ts)?;
            }
        }
        Ok(())
    }

    /// Commits a request that [`StatusOracleCore::check`] already admitted:
    /// issues the commit timestamp, records the write set in `lastCommit`,
    /// and registers the commit.
    ///
    /// Calling this without a passing `check` under the same critical
    /// section violates the isolation guarantee; it is public (not
    /// `unsafe` — memory safety is unaffected) for the WAL-interposing
    /// embedders described on `check`.
    pub fn commit_unchecked(&mut self, req: &CommitRequest) -> Timestamp {
        let commit_ts = self.ts.next();
        self.finish_commit_at(req, commit_ts);
        commit_ts
    }

    /// Registers a checked commit whose commit timestamp was already issued
    /// by the embedder — necessarily from the *same* (shared) counter this
    /// oracle draws from, or the temporal-overlap predicates break.
    ///
    /// Concurrent embedders use this to issue the commit timestamp inside a
    /// narrower critical section (e.g. atomically with publishing to a
    /// reader-visible index) and then complete the oracle bookkeeping:
    /// `lastCommit` rows, the commit-table entry, and counters.
    pub fn finish_commit_at(&mut self, req: &CommitRequest, commit_ts: Timestamp) {
        for &row in &req.write_rows {
            self.counters.rows_recorded.inc();
            let evicted = self.last_commit.record(row, commit_ts);
            self.counters.evictions.add(evicted as u64);
        }
        self.commit_table.record_commit(req.start_ts, commit_ts);
        self.counters.commits.inc();
    }

    /// Registers a conflict abort decided externally via
    /// [`StatusOracleCore::check`], keeping statistics and the commit table
    /// consistent with the [`StatusOracleCore::commit`] path.
    pub fn abort_checked(&mut self, start_ts: Timestamp, reason: AbortReason) {
        let _ = self.register_abort(start_ts, reason);
    }

    /// Registers a client-requested abort (application rollback, client
    /// crash detected by recovery, etc.).
    pub fn abort(&mut self, start_ts: Timestamp) {
        self.counters.client_aborts.inc();
        self.commit_table.record_abort(start_ts);
    }

    /// Overturns a commit decided by [`StatusOracleCore::commit_unchecked`]
    /// whose durability step failed before the commit was published.
    ///
    /// Embedders that pipeline the WAL flush *behind* the critical section
    /// (decide under the lock, persist outside it) call this when the flush
    /// fails: the transaction's fate flips from committed to aborted before
    /// any reader could observe it — the embedder must guarantee the commit
    /// was never published to readers.
    ///
    /// The `lastCommit` rows recorded at decide time are deliberately left in
    /// place: a stale `lastCommit` entry can only cause spurious aborts of
    /// concurrent transactions, never admit a conflicting commit, and commits
    /// decided after this one have already been checked against it.
    pub fn abort_after_decide(&mut self, start_ts: Timestamp) {
        self.commit_table.overturn_commit(start_ts);
        self.counters.commits_overturned.inc();
    }

    fn register_abort(&mut self, start_ts: Timestamp, reason: AbortReason) -> CommitOutcome {
        match reason {
            AbortReason::WriteWriteConflict { .. } => self.counters.ww_aborts.inc(),
            AbortReason::ReadWriteConflict { .. } => self.counters.rw_aborts.inc(),
            AbortReason::TmaxExceeded { .. } => self.counters.tmax_aborts.inc(),
            AbortReason::ClientRequested => self.counters.client_aborts.inc(),
        }
        self.commit_table.record_abort(start_ts);
        CommitOutcome::Aborted(reason)
    }

    /// Queries a transaction's status (§2.2 reader-side visibility support).
    pub fn status(&self, start_ts: Timestamp) -> TxnStatus {
        self.commit_table.status(start_ts)
    }

    /// Read access to the commit table, e.g. to snapshot a client replica.
    pub fn commit_table(&self) -> &CommitTable {
        &self.commit_table
    }

    /// Current `T_max` (always [`Timestamp::ZERO`] for unbounded oracles).
    pub fn t_max(&self) -> Timestamp {
        match &self.last_commit {
            Table::Unbounded(_) => Timestamp::ZERO,
            Table::Bounded(t) => t.t_max(),
        }
    }

    /// Number of rows resident in `lastCommit`.
    pub fn resident_rows(&self) -> usize {
        self.last_commit.len()
    }

    /// Probes the `lastCommit` table for one row without counting it as a
    /// conflict check — diagnostic access for tests and state comparison
    /// (e.g. the sharded-oracle equivalence suite).
    pub fn probe_row(&self, row: RowId) -> Probe {
        self.last_commit.probe(row)
    }

    /// The most recently issued timestamp.
    pub fn last_issued_ts(&self) -> Timestamp {
        self.ts.last_issued()
    }

    /// Activity counters, folded into a plain value.
    pub fn stats(&self) -> OracleStats {
        self.counters.view()
    }

    /// A shared handle onto the live counters.
    ///
    /// The returned handle reads (and could bump) the same atomics the
    /// oracle updates, so embedders that serialize the oracle behind a lock
    /// can observe statistics without acquiring it.
    pub fn counters(&self) -> OracleCounters {
        self.counters.clone()
    }

    /// Re-applies a committed transaction during WAL recovery.
    ///
    /// Restores the `lastCommit` rows, the commit-table entry, and advances
    /// the timestamp counter past `commit_ts` so no timestamp is ever
    /// reissued. Recovery replays records in WAL order, which is commit
    /// order, so `lastCommit` ends in the same state as before the crash.
    pub fn replay_commit(&mut self, start_ts: Timestamp, commit_ts: Timestamp, rows: &[RowId]) {
        self.ts.advance_to(commit_ts);
        for &row in rows {
            let evicted = self.last_commit.record(row, commit_ts);
            self.counters.evictions.add(evicted as u64);
        }
        self.commit_table.record_commit(start_ts, commit_ts);
    }

    /// Re-applies an aborted transaction during WAL recovery.
    pub fn replay_abort(&mut self, start_ts: Timestamp) {
        self.ts.advance_to(start_ts);
        self.commit_table.record_abort(start_ts);
    }

    /// Advances the timestamp counter past `bound` without recording any
    /// transaction — the recovery action for a timestamp-reservation WAL
    /// record (§6.2): timestamps up to the persisted bound may have been
    /// issued before the crash and must never be reissued.
    pub fn advance_timestamps(&mut self, bound: Timestamp) {
        self.ts.advance_to(bound);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(ids: &[u64]) -> Vec<RowId> {
        ids.iter().map(|&i| RowId(i)).collect()
    }

    #[test]
    fn si_first_committer_wins_on_ww_conflict() {
        // Algorithm 1 "commits the transaction for which the commit request
        // is received sooner".
        let mut o = StatusOracleCore::unbounded(IsolationLevel::Snapshot);
        let t1 = o.begin();
        let t2 = o.begin();
        assert!(o
            .commit(CommitRequest::new(t1, vec![], rows(&[7])))
            .is_committed());
        let out = o.commit(CommitRequest::new(t2, vec![], rows(&[7])));
        assert_eq!(
            out.abort_reason(),
            Some(AbortReason::WriteWriteConflict {
                row: RowId(7),
                committed_at: Timestamp(3),
            })
        );
    }

    #[test]
    fn si_allows_disjoint_writes() {
        let mut o = StatusOracleCore::unbounded(IsolationLevel::Snapshot);
        let t1 = o.begin();
        let t2 = o.begin();
        assert!(o
            .commit(CommitRequest::new(t1, rows(&[1]), rows(&[2])))
            .is_committed());
        // Write skew: t2 read row 2 (now stale) but writes only row 1.
        assert!(o
            .commit(CommitRequest::new(t2, rows(&[2]), rows(&[1])))
            .is_committed());
    }

    #[test]
    fn wsi_aborts_on_rw_conflict() {
        let mut o = StatusOracleCore::unbounded(IsolationLevel::WriteSnapshot);
        let t1 = o.begin();
        let t2 = o.begin();
        assert!(o
            .commit(CommitRequest::new(t1, rows(&[1]), rows(&[2])))
            .is_committed());
        let out = o.commit(CommitRequest::new(t2, rows(&[2]), rows(&[1])));
        assert!(matches!(
            out.abort_reason(),
            Some(AbortReason::ReadWriteConflict { row: RowId(2), .. })
        ));
    }

    #[test]
    fn wsi_allows_blind_write_overlap() {
        // History 4: r1[x] w2[x] w1[x] c1 c2 — SI aborts one, WSI commits
        // both because neither writes into the other's read set in the
        // rw-temporal window.
        let mut o = StatusOracleCore::unbounded(IsolationLevel::WriteSnapshot);
        let t1 = o.begin();
        let t2 = o.begin();
        // t1 read x before any commit; t2 blind-writes x.
        assert!(o
            .commit(CommitRequest::new(t1, rows(&[1]), rows(&[1])))
            .is_committed());
        // t2 has an empty read set: nothing to conflict on.
        assert!(o
            .commit(CommitRequest::new(t2, vec![], rows(&[1])))
            .is_committed());
    }

    #[test]
    fn si_aborts_blind_write_overlap() {
        let mut o = StatusOracleCore::unbounded(IsolationLevel::Snapshot);
        let t1 = o.begin();
        let t2 = o.begin();
        assert!(o
            .commit(CommitRequest::new(t1, rows(&[1]), rows(&[1])))
            .is_committed());
        assert!(o
            .commit(CommitRequest::new(t2, vec![], rows(&[1])))
            .is_aborted());
    }

    #[test]
    fn read_only_txns_never_abort_and_cost_nothing() {
        for level in [IsolationLevel::Snapshot, IsolationLevel::WriteSnapshot] {
            let mut o = StatusOracleCore::unbounded(level);
            let t1 = o.begin();
            let t2 = o.begin();
            // A write transaction commits, modifying a row t2 read.
            assert!(o
                .commit(CommitRequest::new(t1, vec![], rows(&[1])))
                .is_committed());
            // t2 is read-only over that same row: still commits, and the
            // oracle performed no conflict probes for it.
            let before = o.stats().rows_checked;
            let out = o.commit(CommitRequest::new(t2, rows(&[1]), vec![]));
            assert!(out.is_committed());
            assert_eq!(o.stats().rows_checked, before);
            assert_eq!(o.stats().read_only_commits, 1);
        }
    }

    #[test]
    fn non_overlapping_transactions_commit_sequentially() {
        let mut o = StatusOracleCore::unbounded(IsolationLevel::WriteSnapshot);
        for _ in 0..100 {
            let t = o.begin();
            assert!(o
                .commit(CommitRequest::new(t, rows(&[1]), rows(&[1])))
                .is_committed());
        }
        assert_eq!(o.stats().commits, 100);
        assert_eq!(o.stats().total_aborts(), 0);
    }

    #[test]
    fn commit_timestamps_are_issued_in_decision_order() {
        let mut o = StatusOracleCore::unbounded(IsolationLevel::WriteSnapshot);
        let t1 = o.begin();
        let t2 = o.begin();
        let c2 = o
            .commit(CommitRequest::new(t2, vec![], rows(&[2])))
            .commit_ts()
            .unwrap();
        let c1 = o
            .commit(CommitRequest::new(t1, vec![], rows(&[1])))
            .commit_ts()
            .unwrap();
        assert!(c2 < c1, "first decided commit gets the smaller timestamp");
        assert!(c2 > t2 && c1 > t1);
    }

    #[test]
    fn bounded_oracle_tmax_aborts_old_transactions() {
        let mut o = StatusOracleCore::bounded(IsolationLevel::WriteSnapshot, 2);
        let old = o.begin();
        // Enough commits to evict everything the old txn might care about.
        for i in 10..20u64 {
            let t = o.begin();
            assert!(o
                .commit(CommitRequest::new(t, vec![], rows(&[i])))
                .is_committed());
        }
        assert!(o.t_max() > Timestamp::ZERO);
        // `old` reads a row nobody ever wrote; resident info is gone, so the
        // oracle must pessimistically abort (Algorithm 3 line 8).
        let out = o.commit(CommitRequest::new(old, rows(&[999]), rows(&[1000])));
        assert!(matches!(
            out.abort_reason(),
            Some(AbortReason::TmaxExceeded { .. })
        ));
        assert_eq!(o.stats().tmax_aborts, 1);
    }

    #[test]
    fn bounded_oracle_commits_recent_transactions() {
        let mut o = StatusOracleCore::bounded(IsolationLevel::WriteSnapshot, 4);
        for i in 0..100u64 {
            let t = o.begin();
            // Recent transaction: starts after all evictions that could
            // matter, so T_max < start and it commits.
            assert!(o
                .commit(CommitRequest::new(t, rows(&[i]), rows(&[i])))
                .is_committed());
        }
        assert_eq!(o.stats().tmax_aborts, 0);
    }

    #[test]
    fn bounded_never_admits_what_unbounded_refuses() {
        // Deterministic interleaving check; the proptest version lives in
        // tests/ and randomizes schedules.
        let mut u = StatusOracleCore::unbounded(IsolationLevel::WriteSnapshot);
        let mut b = StatusOracleCore::bounded(IsolationLevel::WriteSnapshot, 2);
        let schedule: Vec<(u64, u64)> = (0..50).map(|i| (i % 7, (i * 3) % 7)).collect();
        let mut pending_u = Vec::new();
        let mut pending_b = Vec::new();
        for (i, &(r, w)) in schedule.iter().enumerate() {
            pending_u.push((u.begin(), r, w));
            pending_b.push((b.begin(), r, w));
            if i % 3 == 2 {
                for ((ts_u, r, w), (ts_b, _, _)) in pending_u.drain(..).zip(pending_b.drain(..)) {
                    let out_u = u.commit(CommitRequest::new(ts_u, rows(&[r]), rows(&[w])));
                    let out_b = b.commit(CommitRequest::new(ts_b, rows(&[r]), rows(&[w])));
                    if out_u.is_aborted() {
                        assert!(out_b.is_aborted(), "bounded admitted a refused commit");
                    }
                }
            }
        }
    }

    #[test]
    fn replay_reconstructs_conflict_state() {
        let mut o = StatusOracleCore::unbounded(IsolationLevel::WriteSnapshot);
        let t1 = o.begin();
        let t2 = o.begin(); // concurrent reader, still in flight at crash time
        let c1 = o
            .commit(CommitRequest::new(t1, vec![], rows(&[7])))
            .commit_ts()
            .unwrap();

        // Fresh oracle recovers from the "WAL".
        let mut r = StatusOracleCore::unbounded(IsolationLevel::WriteSnapshot);
        r.replay_commit(t1, c1, &rows(&[7]));
        assert_eq!(r.status(t1), TxnStatus::Committed(c1));
        assert!(r.last_issued_ts() >= c1);

        // The in-flight transaction that read row 7 before the recovered
        // commit aborts, exactly as it would have pre-crash.
        let out = r.commit(CommitRequest::new(t2, rows(&[7]), rows(&[8])));
        assert!(out.is_aborted());
    }

    #[test]
    fn abort_rate_stat() {
        let mut o = StatusOracleCore::unbounded(IsolationLevel::Snapshot);
        let t1 = o.begin();
        let t2 = o.begin();
        assert!(o
            .commit(CommitRequest::new(t1, vec![], rows(&[1])))
            .is_committed());
        assert!(o
            .commit(CommitRequest::new(t2, vec![], rows(&[1])))
            .is_aborted());
        assert!((o.stats().abort_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn range_read_set_detects_conflicts() {
        let mut o = StatusOracleCore::unbounded(IsolationLevel::WriteSnapshot);
        let scanner = o.begin();
        let writer = o.begin();
        // A writer commits into row 500 during the scanner's lifetime.
        assert!(o
            .commit(CommitRequest::new(writer, vec![], rows(&[500])))
            .is_committed());
        // The analytical scanner read rows [0, 1000) as a compact range.
        let req = CommitRequest::new(scanner, vec![], rows(&[2000]))
            .with_read_ranges(vec![crate::RowRange::new(0, 1000)]);
        let out = o.commit(req);
        assert!(matches!(
            out.abort_reason(),
            Some(AbortReason::ReadWriteConflict { .. })
        ));
        assert_eq!(o.stats().ranges_checked, 1);
    }

    #[test]
    fn range_read_set_passes_when_untouched() {
        let mut o = StatusOracleCore::unbounded(IsolationLevel::WriteSnapshot);
        let scanner = o.begin();
        let writer = o.begin();
        assert!(o
            .commit(CommitRequest::new(writer, vec![], rows(&[5000])))
            .is_committed());
        let req = CommitRequest::new(scanner, vec![], rows(&[6000]))
            .with_read_ranges(vec![crate::RowRange::new(0, 1000)]);
        assert!(o.commit(req).is_committed());
    }

    #[test]
    fn range_read_set_over_approximates() {
        // The writer's row was *not* read by the scan, but the compact
        // range covers it: the abort is unnecessary yet safe (§5.2 names
        // exactly this trade-off).
        let mut o = StatusOracleCore::unbounded(IsolationLevel::WriteSnapshot);
        let scanner = o.begin();
        let writer = o.begin();
        assert!(o
            .commit(CommitRequest::new(writer, vec![], rows(&[999])))
            .is_committed());
        let req = CommitRequest::new(scanner, vec![], rows(&[2000]))
            .with_read_ranges(vec![crate::RowRange::new(0, 1000)]);
        assert!(o.commit(req).is_aborted());
    }

    #[test]
    fn ranges_ignored_under_snapshot_isolation() {
        // SI checks write-write conflicts only; read ranges don't apply.
        let mut o = StatusOracleCore::unbounded(IsolationLevel::Snapshot);
        let scanner = o.begin();
        let writer = o.begin();
        assert!(o
            .commit(CommitRequest::new(writer, vec![], rows(&[500])))
            .is_committed());
        let req = CommitRequest::new(scanner, vec![], rows(&[2000]))
            .with_read_ranges(vec![crate::RowRange::new(0, 1000)]);
        assert!(o.commit(req).is_committed());
        assert_eq!(o.stats().ranges_checked, 0);
    }

    #[test]
    fn shared_counter_interleaves_starts_and_commits() {
        let ts = Arc::new(SharedTimestampSource::new());
        let mut o =
            StatusOracleCore::unbounded_shared(IsolationLevel::WriteSnapshot, Arc::clone(&ts));
        // Start issued lock-free, outside the oracle.
        let t1 = ts.next();
        let c1 = o
            .commit(CommitRequest::new(t1, vec![], rows(&[1])))
            .commit_ts()
            .unwrap();
        assert!(c1 > t1);
        assert_eq!(o.last_issued_ts(), c1);
        // The next lock-free start observes the commit timestamp.
        assert!(ts.next() > c1);
    }

    #[test]
    fn overturned_commit_reads_as_aborted() {
        let mut o = StatusOracleCore::unbounded(IsolationLevel::WriteSnapshot);
        let t = o.begin();
        let req = CommitRequest::new(t, vec![], rows(&[1]));
        assert!(o.check(&req).is_ok());
        let _decided = o.commit_unchecked(&req);
        assert_eq!(o.stats().commits, 1);
        o.abort_after_decide(t);
        assert_eq!(o.status(t), TxnStatus::Aborted);
        assert_eq!(o.stats().commits, 0);
    }

    #[test]
    fn client_abort_is_recorded() {
        let mut o = StatusOracleCore::unbounded(IsolationLevel::WriteSnapshot);
        let t = o.begin();
        o.abort(t);
        assert_eq!(o.status(t), TxnStatus::Aborted);
        assert_eq!(o.stats().client_aborts, 1);
    }
}

//! Core types and conflict-detection algorithms for snapshot isolation (SI)
//! and write-snapshot isolation (WSI).
//!
//! This crate is the heart of the `writesnap` workspace: a pure,
//! allocation-conscious implementation of the algorithms in *A Critique of
//! Snapshot Isolation* (Gómez Ferro & Yabandeh, EuroSys 2012):
//!
//! * **Algorithm 1** — lock-free snapshot isolation: a commit request carries
//!   the set of *modified* rows, which is checked for write-write conflicts
//!   against the `lastCommit` table.
//! * **Algorithm 2** — write-snapshot isolation: a commit request carries the
//!   sets of *read* and *modified* rows; the read set is checked for
//!   read-write conflicts, and the write set updates `lastCommit`.
//! * **Algorithm 3** — the memory-bounded variant: `lastCommit` keeps only
//!   the most recently committed rows and tracks `T_max`, the maximum commit
//!   timestamp ever evicted; a transaction older than `T_max` whose rows are
//!   no longer resident is pessimistically aborted.
//!
//! The same state machine, [`StatusOracleCore`], drives both isolation
//! levels — the only difference is *which* of the two row sets is checked
//! (writes for SI, reads for WSI), captured by [`IsolationLevel`]. Higher
//! layers embed this state machine in different shells:
//!
//! * `wsi-store` builds an embedded, thread-safe transactional multi-version
//!   store on the sharded [`ConcurrentOracle`] (or, behind a compatibility
//!   option, on this state machine wrapped in a single mutex);
//! * `wsi-oracle` wraps it in a simulated server with WAL persistence and a
//!   CPU cost model to reproduce the paper's status-oracle experiments.
//!
//! # Example
//!
//! ```
//! use wsi_core::{IsolationLevel, StatusOracleCore, RowId, CommitRequest};
//!
//! let mut oracle = StatusOracleCore::unbounded(IsolationLevel::WriteSnapshot);
//!
//! let t1 = oracle.begin();
//! let t2 = oracle.begin();
//!
//! // Both transactions read row 1 and write row 1 (classic lost update).
//! let r1 = oracle.commit(CommitRequest::new(t1, vec![RowId(1)], vec![RowId(1)]));
//! assert!(r1.is_committed());
//!
//! // t2 read row 1 before t1 committed, so it must abort under WSI.
//! let r2 = oracle.commit(CommitRequest::new(t2, vec![RowId(1)], vec![RowId(1)]));
//! assert!(r2.is_aborted());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

mod batched;
mod commit_table;
mod error;
mod lastcommit;
mod oracle;
mod policy;
mod row;
mod sharded;
pub mod ssi;
mod ts;

pub use batched::{BatchedOracle, EpochObs, EpochPublisher};
pub use commit_table::{CommitTable, TxnStatus};
pub use error::{AbortReason, CommitOutcome, Error, Result};
pub use lastcommit::{BoundedLastCommit, LastCommitTable, Probe, UnboundedLastCommit};
pub use oracle::{CommitRequest, OracleCounters, OracleStats, StatusOracleCore};
pub use policy::{
    rw_spatial_overlap, rw_temporal_overlap, spatial_overlap, temporal_overlap, IsolationLevel,
};
pub use row::{hash_row_key, RowId, RowRange};
pub use sharded::{ConcurrentOracle, DecisionGuard, ShardObs, ShardedLastCommit};
pub use ts::{SharedTimestampSource, Timestamp, TimestampSource};

//! The commit table: transaction start-to-commit timestamp mapping.
//!
//! Line 6 of Algorithms 1–2 "maintains the mapping between the transaction
//! start and commit timestamps. This data could be used later to process
//! queries about the transaction statuses" (§2.2). Readers use exactly such
//! queries to decide whether a data version written with start timestamp
//! `T_s(w)` is visible in their snapshot: skip it if the writer is (i) not
//! committed, (ii) aborted, or (iii) committed with `T_c(w)` greater than the
//! reader's start timestamp.

use std::collections::{HashMap, HashSet};

use crate::ts::Timestamp;

/// A transaction's status as recorded by the commit table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxnStatus {
    /// The transaction has neither committed nor aborted (in flight, or
    /// unknown to this replica of the table).
    Pending,
    /// The transaction committed at the given timestamp.
    Committed(Timestamp),
    /// The transaction aborted.
    Aborted,
}

impl TxnStatus {
    /// Returns the commit timestamp, if committed.
    #[inline]
    pub fn commit_ts(self) -> Option<Timestamp> {
        match self {
            TxnStatus::Committed(ts) => Some(ts),
            _ => None,
        }
    }
}

/// Mapping from transaction start timestamps to their fate.
///
/// The status oracle holds the authoritative copy; the paper's two deployment
/// options replicate it either into the data store ("written back into the
/// database") or onto the clients (§2.2 — the configuration the paper
/// evaluates). [`CommitTable::clone`] gives a consistent point-in-time client
/// replica for tests and simulations.
///
/// # Example
///
/// ```
/// use wsi_core::{CommitTable, Timestamp, TxnStatus};
///
/// let mut table = CommitTable::new();
/// table.record_commit(Timestamp(3), Timestamp(7));
/// table.record_abort(Timestamp(4));
///
/// assert_eq!(table.status(Timestamp(3)), TxnStatus::Committed(Timestamp(7)));
/// assert_eq!(table.status(Timestamp(4)), TxnStatus::Aborted);
/// assert_eq!(table.status(Timestamp(5)), TxnStatus::Pending);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CommitTable {
    commits: HashMap<Timestamp, Timestamp>,
    aborts: HashSet<Timestamp>,
}

impl CommitTable {
    /// Creates an empty commit table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that the transaction that started at `start_ts` committed at
    /// `commit_ts`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the transaction already has a recorded fate
    /// or if `commit_ts <= start_ts`; the oracle issues commit timestamps
    /// after start timestamps from one counter, so either indicates a logic
    /// error in the embedding layer.
    pub fn record_commit(&mut self, start_ts: Timestamp, commit_ts: Timestamp) {
        debug_assert!(commit_ts > start_ts, "commit ts must follow start ts");
        debug_assert!(!self.aborts.contains(&start_ts), "txn already aborted");
        let prev = self.commits.insert(start_ts, commit_ts);
        debug_assert!(prev.is_none(), "txn already committed");
    }

    /// Records that the transaction that started at `start_ts` aborted.
    pub fn record_abort(&mut self, start_ts: Timestamp) {
        debug_assert!(
            !self.commits.contains_key(&start_ts),
            "txn already committed"
        );
        self.aborts.insert(start_ts);
    }

    /// Flips a recorded commit into an abort.
    ///
    /// The recovery-after-decide path: an embedder decided the commit,
    /// recorded it, and then failed to persist it, so the transaction's fate
    /// must become aborted *before* the commit is ever published to readers.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the transaction has no recorded commit.
    pub fn overturn_commit(&mut self, start_ts: Timestamp) {
        let prev = self.commits.remove(&start_ts);
        debug_assert!(prev.is_some(), "txn was not committed");
        self.aborts.insert(start_ts);
    }

    /// Queries the status of the transaction that started at `start_ts`.
    pub fn status(&self, start_ts: Timestamp) -> TxnStatus {
        if let Some(&commit_ts) = self.commits.get(&start_ts) {
            TxnStatus::Committed(commit_ts)
        } else if self.aborts.contains(&start_ts) {
            TxnStatus::Aborted
        } else {
            TxnStatus::Pending
        }
    }

    /// Implements the §2.2 snapshot-read visibility rule: is a version
    /// written by the transaction that started at `writer_start` visible to a
    /// reader whose snapshot is `reader_start`?
    ///
    /// A transaction always observes its own writes, handled by the caller
    /// before consulting the table (reads check the local write buffer
    /// first).
    pub fn is_visible(&self, writer_start: Timestamp, reader_start: Timestamp) -> bool {
        match self.status(writer_start) {
            TxnStatus::Committed(commit_ts) => commit_ts < reader_start,
            TxnStatus::Pending | TxnStatus::Aborted => false,
        }
    }

    /// Number of committed transactions recorded.
    pub fn committed_count(&self) -> usize {
        self.commits.len()
    }

    /// Number of aborted transactions recorded.
    pub fn aborted_count(&self) -> usize {
        self.aborts.len()
    }

    /// Drops all entries with start timestamp below `watermark`.
    ///
    /// Safe once no active or future transaction can hold a snapshot that
    /// needs them: versions below the watermark have been compacted by the
    /// store's garbage collector, so no reader will ever query these entries
    /// again. Keeps the authoritative table from growing without bound — the
    /// same role `T_max` plays for `lastCommit`.
    pub fn prune_below(&mut self, watermark: Timestamp) {
        self.commits.retain(|&start, _| start >= watermark);
        self.aborts.retain(|&start| start >= watermark);
    }

    /// Iterates over `(start_ts, commit_ts)` pairs in unspecified order.
    pub fn iter_commits(&self) -> impl Iterator<Item = (Timestamp, Timestamp)> + '_ {
        self.commits.iter().map(|(&s, &c)| (s, c))
    }

    /// Iterates over the start timestamps of aborted transactions in
    /// unspecified order.
    pub fn iter_aborts(&self) -> impl Iterator<Item = Timestamp> + '_ {
        self.aborts.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_transitions() {
        let mut t = CommitTable::new();
        assert_eq!(t.status(Timestamp(1)), TxnStatus::Pending);
        t.record_commit(Timestamp(1), Timestamp(2));
        assert_eq!(t.status(Timestamp(1)), TxnStatus::Committed(Timestamp(2)));
        t.record_abort(Timestamp(3));
        assert_eq!(t.status(Timestamp(3)), TxnStatus::Aborted);
        assert_eq!(t.committed_count(), 1);
        assert_eq!(t.aborted_count(), 1);
    }

    #[test]
    fn visibility_rule() {
        let mut t = CommitTable::new();
        t.record_commit(Timestamp(1), Timestamp(5));
        // Reader snapshot after the commit: visible.
        assert!(t.is_visible(Timestamp(1), Timestamp(6)));
        // Reader snapshot at exactly the commit ts: NOT visible (strict <).
        assert!(!t.is_visible(Timestamp(1), Timestamp(5)));
        // Reader snapshot before the commit: not visible.
        assert!(!t.is_visible(Timestamp(1), Timestamp(3)));
        // Pending writer: never visible.
        assert!(!t.is_visible(Timestamp(2), Timestamp(100)));
        // Aborted writer: never visible.
        t.record_abort(Timestamp(2));
        assert!(!t.is_visible(Timestamp(2), Timestamp(100)));
    }

    #[test]
    fn prune_below_drops_old_entries_only() {
        let mut t = CommitTable::new();
        t.record_commit(Timestamp(1), Timestamp(2));
        t.record_commit(Timestamp(10), Timestamp(12));
        t.record_abort(Timestamp(3));
        t.record_abort(Timestamp(11));
        t.prune_below(Timestamp(10));
        assert_eq!(t.status(Timestamp(1)), TxnStatus::Pending); // forgotten
        assert_eq!(t.status(Timestamp(3)), TxnStatus::Pending); // forgotten
        assert_eq!(t.status(Timestamp(10)), TxnStatus::Committed(Timestamp(12)));
        assert_eq!(t.status(Timestamp(11)), TxnStatus::Aborted);
    }

    #[test]
    fn clone_is_a_point_in_time_replica() {
        let mut t = CommitTable::new();
        t.record_commit(Timestamp(1), Timestamp(2));
        let replica = t.clone();
        t.record_commit(Timestamp(3), Timestamp(4));
        assert_eq!(replica.status(Timestamp(3)), TxnStatus::Pending);
        assert_eq!(
            replica.status(Timestamp(1)),
            TxnStatus::Committed(Timestamp(2))
        );
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "commit ts must follow start ts")]
    fn commit_before_start_rejected() {
        let mut t = CommitTable::new();
        t.record_commit(Timestamp(5), Timestamp(5));
    }
}

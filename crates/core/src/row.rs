//! Row identifiers.
//!
//! The status oracle works on fixed-size *row identifiers*, not raw keys
//! (§2.2: "the list of identifiers of modified rows is submitted to a
//! centralized status oracle"). Clients hash their byte-string row keys down
//! to 64 bits before submitting them. A hash collision can only merge two
//! distinct rows into one identifier, which makes conflict detection *more*
//! conservative — a spurious abort at worst, never an isolation violation —
//! so 64-bit identifiers are safe at any realistic table size.

use std::fmt;

/// A 64-bit row identifier as used by the status oracle.
///
/// For synthetic workloads (YCSB-style) the identifier is simply the row
/// number. For byte-string keys use [`hash_row_key`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct RowId(pub u64);

impl RowId {
    /// Returns the raw 64-bit identifier.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for RowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "row:{}", self.0)
    }
}

impl From<u64> for RowId {
    fn from(raw: u64) -> Self {
        RowId(raw)
    }
}

/// A half-open range `[start, end)` of row identifiers.
///
/// The §5.2 compact read-set representation: "analytical transactions could
/// submit to the status oracle a compact, over-approximated representation
/// of the read set, e.g., table name and row ranges." Ranges make sense for
/// workloads whose row identifiers are meaningful (e.g. YCSB row numbers or
/// sequential scan keys), not for hashed byte-string keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RowRange {
    /// First row in the range.
    pub start: RowId,
    /// One past the last row in the range.
    pub end: RowId,
}

impl RowRange {
    /// Creates a range over `[start, end)`.
    pub fn new(start: u64, end: u64) -> Self {
        RowRange {
            start: RowId(start),
            end: RowId(end),
        }
    }

    /// Returns `true` if the range contains no rows.
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

impl fmt::Display for RowRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rows:[{}, {})", self.start.0, self.end.0)
    }
}

/// Hashes an arbitrary byte-string row key to a [`RowId`].
///
/// Uses the FNV-1a construction: deterministic across processes and runs
/// (unlike `std`'s randomly-seeded `DefaultHasher`), cheap, and with good
/// avalanche behaviour on short keys. Determinism matters because the
/// embedded store persists conflict-relevant state through the WAL and must
/// map keys to the same identifiers after recovery in a fresh process.
///
/// # Example
///
/// ```
/// use wsi_core::hash_row_key;
///
/// let a = hash_row_key(b"account/alice");
/// let b = hash_row_key(b"account/bob");
/// assert_ne!(a, b);
/// assert_eq!(a, hash_row_key(b"account/alice"));
/// ```
pub fn hash_row_key(key: &[u8]) -> RowId {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = FNV_OFFSET;
    for &b in key {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    RowId(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn hash_is_deterministic() {
        assert_eq!(hash_row_key(b"row-17"), hash_row_key(b"row-17"));
    }

    #[test]
    fn hash_distinguishes_nearby_keys() {
        let ids: HashSet<RowId> = (0..10_000u64)
            .map(|i| hash_row_key(format!("user{i}").as_bytes()))
            .collect();
        assert_eq!(ids.len(), 10_000, "no collisions expected at this scale");
    }

    #[test]
    fn empty_key_hashes_to_offset_basis() {
        assert_eq!(hash_row_key(b""), RowId(0xcbf2_9ce4_8422_2325));
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(RowId(3).to_string(), "row:3");
        assert_eq!(RowRange::new(3, 9).to_string(), "rows:[3, 9)");
    }

    #[test]
    fn range_emptiness() {
        assert!(RowRange::new(5, 5).is_empty());
        assert!(RowRange::new(6, 5).is_empty());
        assert!(!RowRange::new(5, 6).is_empty());
    }
}

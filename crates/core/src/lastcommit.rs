//! The `lastCommit` table: per-row latest commit timestamps.
//!
//! Line 2 of Algorithms 1–3 consults `lastCommit(r)`, the commit timestamp
//! of the latest committed transaction that modified row `r`. Checking only
//! the *latest* writer is sufficient by induction (paper §2.2): every earlier
//! writer of `r` committed with a smaller timestamp, so if the latest does
//! not violate the temporal condition, none does.
//!
//! Two implementations are provided:
//!
//! * [`UnboundedLastCommit`] — a plain hash map; exact, grows with the
//!   number of distinct rows ever written (Algorithms 1 and 2).
//! * [`BoundedLastCommit`] — keeps at most `NR` resident rows, evicting the
//!   oldest entries and folding their timestamps into `T_max` (Algorithm 3,
//!   paper Appendix A). Lookups of evicted rows return `T_max`-based
//!   pessimistic answers: eviction can cause extra aborts but never admits a
//!   commit the unbounded table would have refused.

use std::collections::{BTreeMap, VecDeque};

use crate::{row::RowId, ts::Timestamp};

/// Result of probing the `lastCommit` table for a row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Probe {
    /// The row is resident with the given latest commit timestamp.
    Resident(Timestamp),
    /// The row has never been written (and the table has never evicted, or
    /// can prove the row was not evicted — only the unbounded table can).
    NeverWritten,
    /// The row is not resident and may have been evicted; the caller must
    /// compare the transaction's start timestamp against `T_max`
    /// (Algorithm 3 lines 6–9).
    MaybeEvicted {
        /// Maximum commit timestamp among all evicted entries.
        t_max: Timestamp,
    },
}

/// Common interface over the bounded and unbounded `lastCommit` tables.
pub trait LastCommitTable {
    /// Looks up the latest commit timestamp recorded for `row`.
    fn probe(&self, row: RowId) -> Probe;

    /// Records that `row` was modified by a transaction committing at `ts`.
    ///
    /// Timestamps passed to successive calls for the same row must be
    /// increasing (the oracle issues them from a monotonic counter while
    /// holding its critical section).
    ///
    /// Returns the number of resident rows evicted to make room (always 0
    /// for unbounded tables; 0 or 1 for bounded ones). Eviction is the event
    /// that advances `T_max` and so the event observability cares about.
    fn record(&mut self, row: RowId, ts: Timestamp) -> usize;

    /// Number of resident rows.
    fn len(&self) -> usize;

    /// Probes an entire row-identifier range `[start, end)` (the §5.2
    /// compact read-set representation for analytical transactions):
    /// returns the maximum commit timestamp of any resident row in the
    /// range, combined with the table's eviction uncertainty.
    fn probe_range(&self, start: RowId, end: RowId) -> Probe;

    /// Returns `true` if no rows are resident.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Exact `lastCommit` table backed by an ordered map (Algorithms 1 and 2).
///
/// Ordering by row identifier enables the §5.2 analytical-traffic extension:
/// probing a whole *range* of rows in O(log n + k) instead of submitting an
/// enormous read set.
#[derive(Debug, Clone, Default)]
pub struct UnboundedLastCommit {
    map: BTreeMap<RowId, Timestamp>,
}

impl UnboundedLastCommit {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }
}

impl LastCommitTable for UnboundedLastCommit {
    fn probe(&self, row: RowId) -> Probe {
        match self.map.get(&row) {
            Some(&ts) => Probe::Resident(ts),
            None => Probe::NeverWritten,
        }
    }

    fn record(&mut self, row: RowId, ts: Timestamp) -> usize {
        self.map.insert(row, ts);
        0
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn probe_range(&self, start: RowId, end: RowId) -> Probe {
        match self.map.range(start..end).map(|(_, &ts)| ts).max() {
            Some(ts) => Probe::Resident(ts),
            None => Probe::NeverWritten,
        }
    }
}

/// Memory-bounded `lastCommit` table with `T_max` (Algorithm 3).
///
/// Keeps the `NR` most recently *committed-to* rows. Eviction is in commit
/// order: a FIFO of `(commit_ts, row)` records is maintained alongside the
/// map, with lazy deletion — a queue entry is discarded if the map has since
/// been updated with a newer timestamp for that row. `T_max` is the maximum
/// commit timestamp of any entry actually evicted from the map.
///
/// The paper sizes this for 1 GB of memory holding 32 M rows (≈32 bytes per
/// entry), which at 80 K TPS and 8 rows per transaction keeps the last ~50
/// seconds of commits resident — far longer than any transaction lives, so
/// `T_max` aborts are vanishingly rare in practice (Appendix A).
///
/// # Example
///
/// ```
/// use wsi_core::{BoundedLastCommit, LastCommitTable, RowId, Timestamp};
///
/// let mut t = BoundedLastCommit::with_capacity(2);
/// t.record(RowId(1), Timestamp(10));
/// t.record(RowId(2), Timestamp(11));
/// t.record(RowId(3), Timestamp(12)); // evicts row 1
/// assert_eq!(t.t_max(), Timestamp(10));
/// ```
#[derive(Debug, Clone)]
pub struct BoundedLastCommit {
    map: BTreeMap<RowId, Timestamp>,
    /// FIFO of (commit_ts, row) insertions, oldest first; lazily pruned.
    queue: VecDeque<(Timestamp, RowId)>,
    capacity: usize,
    t_max: Timestamp,
}

impl BoundedLastCommit {
    /// Creates a table retaining at most `capacity` resident rows.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — the oracle needs at least one resident
    /// row to make progress.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "lastCommit capacity must be positive");
        BoundedLastCommit {
            map: BTreeMap::new(),
            queue: VecDeque::with_capacity(capacity),
            capacity,
            t_max: Timestamp::ZERO,
        }
    }

    /// The maximum commit timestamp among all evicted entries
    /// ([`Timestamp::ZERO`] if nothing has been evicted yet).
    #[inline]
    pub fn t_max(&self) -> Timestamp {
        self.t_max
    }

    /// The configured capacity (the paper's `NR`).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn evict_one(&mut self) -> usize {
        while let Some((ts, row)) = self.queue.pop_front() {
            // Lazy deletion: only evict if this queue entry still describes
            // the row's current timestamp; otherwise a newer `record` call
            // superseded it and a newer queue entry exists for the row.
            if self.map.get(&row) == Some(&ts) {
                self.map.remove(&row);
                if ts > self.t_max {
                    self.t_max = ts;
                }
                return 1;
            }
        }
        0
    }
}

impl LastCommitTable for BoundedLastCommit {
    fn probe(&self, row: RowId) -> Probe {
        match self.map.get(&row) {
            Some(&ts) => Probe::Resident(ts),
            None if self.t_max == Timestamp::ZERO => Probe::NeverWritten,
            None => Probe::MaybeEvicted { t_max: self.t_max },
        }
    }

    fn record(&mut self, row: RowId, ts: Timestamp) -> usize {
        let fresh = self.map.insert(row, ts).is_none();
        self.queue.push_back((ts, row));
        let evicted = if fresh && self.map.len() > self.capacity {
            self.evict_one()
        } else {
            0
        };
        // Bound the lazy queue: amortized compaction when it grows far past
        // the map (many re-records of hot rows).
        if self.queue.len() > 2 * self.capacity + 16 {
            let map = &self.map;
            self.queue.retain(|(qts, qrow)| map.get(qrow) == Some(qts));
        }
        evicted
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn probe_range(&self, start: RowId, end: RowId) -> Probe {
        let resident = self.map.range(start..end).map(|(_, &ts)| ts).max();
        match (resident, self.t_max) {
            // Any row in the range may have been evicted with a timestamp up
            // to `t_max`, so the caller must consider both bounds; report
            // the larger pessimistically.
            (Some(ts), t_max) if t_max == Timestamp::ZERO => Probe::Resident(ts),
            (Some(ts), t_max) => Probe::MaybeEvicted {
                t_max: ts.max(t_max),
            },
            (None, t_max) if t_max == Timestamp::ZERO => Probe::NeverWritten,
            (None, t_max) => Probe::MaybeEvicted { t_max },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_probe_and_record() {
        let mut t = UnboundedLastCommit::new();
        assert_eq!(t.probe(RowId(1)), Probe::NeverWritten);
        t.record(RowId(1), Timestamp(5));
        assert_eq!(t.probe(RowId(1)), Probe::Resident(Timestamp(5)));
        t.record(RowId(1), Timestamp(9));
        assert_eq!(t.probe(RowId(1)), Probe::Resident(Timestamp(9)));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn bounded_behaves_exactly_until_full() {
        let mut t = BoundedLastCommit::with_capacity(8);
        for i in 0..8 {
            t.record(RowId(i), Timestamp(i + 1));
        }
        assert_eq!(t.t_max(), Timestamp::ZERO);
        for i in 0..8 {
            assert_eq!(t.probe(RowId(i)), Probe::Resident(Timestamp(i + 1)));
        }
        assert_eq!(t.probe(RowId(99)), Probe::NeverWritten);
    }

    #[test]
    fn bounded_evicts_oldest_and_tracks_t_max() {
        let mut t = BoundedLastCommit::with_capacity(2);
        t.record(RowId(1), Timestamp(10));
        t.record(RowId(2), Timestamp(11));
        t.record(RowId(3), Timestamp(12));
        assert_eq!(t.len(), 2);
        assert_eq!(t.t_max(), Timestamp(10));
        assert_eq!(
            t.probe(RowId(1)),
            Probe::MaybeEvicted {
                t_max: Timestamp(10)
            }
        );
        assert_eq!(t.probe(RowId(2)), Probe::Resident(Timestamp(11)));
        // A never-written row is indistinguishable from an evicted one once
        // eviction has happened: the table must answer pessimistically.
        assert_eq!(
            t.probe(RowId(99)),
            Probe::MaybeEvicted {
                t_max: Timestamp(10)
            }
        );
    }

    #[test]
    fn rerecording_hot_row_does_not_evict_it() {
        let mut t = BoundedLastCommit::with_capacity(2);
        t.record(RowId(1), Timestamp(1));
        t.record(RowId(2), Timestamp(2));
        // Re-record row 1 many times; the stale queue entries must not cause
        // row 1 (the hottest row) to be evicted ahead of row 2.
        for i in 3..50 {
            t.record(RowId(1), Timestamp(i));
        }
        t.record(RowId(3), Timestamp(50)); // forces one eviction
        assert_eq!(
            t.probe(RowId(2)),
            Probe::MaybeEvicted {
                t_max: Timestamp(2)
            }
        );
        assert_eq!(t.probe(RowId(1)), Probe::Resident(Timestamp(49)));
        assert_eq!(t.probe(RowId(3)), Probe::Resident(Timestamp(50)));
    }

    #[test]
    fn queue_compaction_keeps_len_bounded() {
        let mut t = BoundedLastCommit::with_capacity(4);
        for i in 0..10_000u64 {
            t.record(RowId(i % 4), Timestamp(i + 1));
        }
        assert_eq!(t.len(), 4);
        assert!(t.queue.len() <= 2 * t.capacity + 16 + 1);
        // No eviction ever needed: working set fits.
        assert_eq!(t.t_max(), Timestamp::ZERO);
    }

    #[test]
    fn t_max_is_monotonic() {
        let mut t = BoundedLastCommit::with_capacity(1);
        let mut prev = Timestamp::ZERO;
        for i in 1..100 {
            t.record(RowId(i), Timestamp(i));
            assert!(t.t_max() >= prev);
            prev = t.t_max();
        }
        assert_eq!(t.t_max(), Timestamp(98));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = BoundedLastCommit::with_capacity(0);
    }

    #[test]
    fn unbounded_range_probe_finds_max_in_range() {
        let mut t = UnboundedLastCommit::new();
        t.record(RowId(5), Timestamp(10));
        t.record(RowId(7), Timestamp(30));
        t.record(RowId(9), Timestamp(20));
        assert_eq!(
            t.probe_range(RowId(5), RowId(8)),
            Probe::Resident(Timestamp(30))
        );
        assert_eq!(
            t.probe_range(RowId(8), RowId(10)),
            Probe::Resident(Timestamp(20))
        );
        assert_eq!(t.probe_range(RowId(10), RowId(100)), Probe::NeverWritten);
        // End is exclusive.
        assert_eq!(t.probe_range(RowId(0), RowId(5)), Probe::NeverWritten);
    }

    #[test]
    fn bounded_range_probe_is_pessimistic_after_eviction() {
        let mut t = BoundedLastCommit::with_capacity(2);
        t.record(RowId(1), Timestamp(10));
        t.record(RowId(2), Timestamp(11));
        t.record(RowId(3), Timestamp(12)); // evicts row 1, t_max = 10
        match t.probe_range(RowId(0), RowId(100)) {
            Probe::MaybeEvicted { t_max } => assert_eq!(t_max, Timestamp(12)),
            other => panic!("expected pessimistic probe, got {other:?}"),
        }
        // A pre-eviction table answers exactly.
        let mut fresh = BoundedLastCommit::with_capacity(8);
        fresh.record(RowId(1), Timestamp(10));
        assert_eq!(
            fresh.probe_range(RowId(0), RowId(5)),
            Probe::Resident(Timestamp(10))
        );
    }
}

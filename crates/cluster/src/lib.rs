//! The full-cluster simulation: clients, data servers, status oracle, WAL.
//!
//! This crate wires every substrate into the deployment of §6 — transaction
//! clients, 25 region servers, and one status oracle persisting through a
//! BookKeeper-like log — as a deterministic discrete-event simulation, and
//! provides the experiment sweeps that regenerate every figure of the
//! paper's evaluation:
//!
//! | Experiment | Paper | Entry point |
//! |---|---|---|
//! | Per-operation latency breakdown | §6.2 | [`experiments::microbench`] |
//! | Status-oracle latency vs throughput | Fig. 5 | [`experiments::fig5`] |
//! | Uniform distribution performance | Fig. 6 | [`experiments::fig6`] |
//! | Zipfian performance / abort rate | Fig. 7 / 8 | [`experiments::fig7_fig8`] |
//! | ZipfianLatest performance / abort rate | Fig. 9 / 10 | [`experiments::fig9_fig10`] |
//!
//! The isolation logic inside the simulation is the *real* `wsi-core` state
//! machine — abort rates are produced by actually running Algorithms 1–2
//! over the generated keys, not by a statistical model.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

mod config;
pub mod experiments;
mod runner;

pub use config::{ClusterConfig, CommitInfo};
pub use runner::{OpLatencySummary, RunResult, Runner};

//! The discrete-event transaction-lifecycle machine.
//!
//! Each in-flight transaction (a *slot*) walks the lifecycle of the
//! lock-free scheme:
//!
//! ```text
//! client ──start req──▶ oracle ──ts──▶ client
//! client ──read/write──▶ region server (per row, sequential)  [data phase]
//! client ──commit(R_r,R_w)──▶ oracle ──(after WAL durable)──▶ client
//! ```
//!
//! Every hop pays the one-way network latency; every server resource is a
//! FIFO station, so queueing delay — and thus the latency-vs-throughput
//! curves — emerges from arrival order. Closed-loop slots start their next
//! transaction the moment the previous decision arrives.

use std::collections::HashMap;

use bytes::Bytes;
use wsi_core::{CommitRequest, RowId, Timestamp};
use wsi_kvstore::{DataCluster, VersionFate};
use wsi_oracle::{FlushResult, OracleServer};
use wsi_sim::{
    metrics::{LatencyStats, Point},
    EventQueue, SimRng, SimTime,
};
use wsi_workload::{TxnTemplate, WorkloadGenerator};

use crate::config::{ClusterConfig, CommitInfo};

/// Mean per-operation latencies, the §6.2 microbenchmark table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpLatencySummary {
    /// Start-timestamp request (paper: 0.17 ms).
    pub start_ms: f64,
    /// Random read (paper: 38.8 ms cold).
    pub read_ms: f64,
    /// Write (paper: 1.13 ms).
    pub write_ms: f64,
    /// Commit request (paper: 4.1 ms).
    pub commit_ms: f64,
}

/// Aggregated outcome of one simulation run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Number of client machines.
    pub clients: usize,
    /// Committed transactions inside the measurement window.
    pub committed: u64,
    /// Aborted transactions inside the window.
    pub aborted: u64,
    /// Committed transactions per second.
    pub tps: f64,
    /// Mean end-to-end latency of committed transactions, ms.
    pub mean_latency_ms: f64,
    /// 99th-percentile latency, ms.
    pub p99_latency_ms: f64,
    /// `aborted / (committed + aborted)`.
    pub abort_rate: f64,
    /// Mean region-server cache hit rate (0 when no data phase).
    pub cache_hit_rate: f64,
    /// Status-oracle critical-section utilization.
    pub oracle_cpu_utilization: f64,
    /// Per-operation latency means.
    pub ops: OpLatencySummary,
}

impl RunResult {
    /// Collapses into a figure point at the given swept load value.
    pub fn to_point(&self, load: f64) -> Point {
        Point {
            load,
            tps: self.tps,
            latency_ms: self.mean_latency_ms,
            abort_rate: self.abort_rate,
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    /// Start-timestamp request arrives at the oracle.
    StartAtOracle { slot: usize },
    /// Start-timestamp response arrives back at the client.
    ClientHasTs { slot: usize },
    /// A data operation arrives at its region server.
    OpAtServer { slot: usize },
    /// The operation's response arrives back at the client.
    ClientOpDone { slot: usize },
    /// A version-status query (no client commit-table replica) arrives at
    /// the oracle.
    StatusQueryAtOracle { slot: usize },
    /// The commit request arrives at the oracle.
    CommitAtOracle { slot: usize },
    /// The commit decision arrives back at the client.
    CommitDecided { slot: usize, committed: bool },
    /// The oracle's WAL batch deadline (5 ms time trigger).
    FlushDeadline,
}

struct Slot {
    template: TxnTemplate,
    start_ts: Timestamp,
    began: SimTime,
    op_idx: usize,
    op_sent: SimTime,
    commit_sent: SimTime,
}

/// One simulated experiment run.
pub struct Runner {
    cfg: ClusterConfig,
    q: EventQueue<Ev>,
    oracle: OracleServer,
    data: DataCluster,
    workload: WorkloadGenerator,
    slots: Vec<Slot>,
    pending_commits: HashMap<u64, usize>,
    scheduled_flush: Option<SimTime>,
    end: SimTime,
    warm_end: SimTime,
    // Measurement.
    latency: LatencyStats,
    committed: u64,
    aborted: u64,
    lat_start: LatencyStats,
    lat_read: LatencyStats,
    lat_write: LatencyStats,
    lat_commit: LatencyStats,
}

impl Runner {
    /// Builds the cluster and seeds the initial transactions.
    pub fn new(cfg: ClusterConfig) -> Self {
        let rng = SimRng::new(cfg.seed);
        let mut data = DataCluster::with_routing(
            cfg.servers,
            cfg.workload.rows,
            cfg.server,
            &rng.fork(1),
            cfg.routing,
        );
        // Pre-warm the caches to their steady state: the paper benchmarks a
        // long-running cluster, and LRU needs millions of accesses to reach
        // steady state under zipf(0.99) — too many to simulate per point.
        // The most popular rows (by the workload's own notion of popularity)
        // are resident; under the uniform distribution popularity is flat,
        // so an arbitrary slice of the same size is resident.
        if cfg.data_phase && cfg.prewarm {
            let budget = (cfg.servers * cfg.server.cache_blocks) as u64;
            let rows = cfg.workload.rows;
            match cfg.workload.distribution {
                wsi_workload::KeyDistribution::Uniform | wsi_workload::KeyDistribution::Zipfian => {
                    // Zipfian popularity rank == row id.
                    data.prewarm(0..budget.min(rows));
                }
                wsi_workload::KeyDistribution::ZipfianLatest => {
                    // Hot rows are the most recently inserted.
                    let lo = rows.saturating_sub(budget);
                    data.prewarm((lo..rows).rev());
                }
            }
        }
        let oracle = OracleServer::new(cfg.oracle);
        let workload = WorkloadGenerator::new(cfg.workload, rng.fork(2));
        let total_slots = cfg.clients * cfg.outstanding_per_client;
        let warm_end = cfg.warmup;
        let end = cfg.warmup + cfg.measure;
        let mut runner = Runner {
            q: EventQueue::new(),
            oracle,
            data,
            workload,
            slots: Vec::with_capacity(total_slots),
            pending_commits: HashMap::new(),
            scheduled_flush: None,
            end,
            warm_end,
            latency: LatencyStats::new(),
            committed: 0,
            aborted: 0,
            lat_start: LatencyStats::new(),
            lat_read: LatencyStats::new(),
            lat_write: LatencyStats::new(),
            lat_commit: LatencyStats::new(),
            cfg,
        };
        for i in 0..total_slots {
            runner.slots.push(Slot {
                template: runner.workload.next_txn(),
                start_ts: Timestamp::ZERO,
                began: SimTime::ZERO,
                op_idx: 0,
                op_sent: SimTime::ZERO,
                commit_sent: SimTime::ZERO,
            });
            // Stagger arrivals slightly so time zero is not a thundering herd.
            let at = SimTime::from_us((i as u64 % 997) * 3);
            runner.slots[i].began = at;
            runner
                .q
                .schedule(at + runner.cfg.one_way_net, Ev::StartAtOracle { slot: i });
        }
        runner
    }

    /// Runs to completion and summarizes.
    pub fn run(mut self) -> RunResult {
        while let Some((now, ev)) = self.q.pop() {
            if now > self.end {
                break;
            }
            self.handle(now, ev);
        }
        self.finish()
    }

    fn in_window(&self, now: SimTime) -> bool {
        now >= self.warm_end && now < self.end
    }

    fn handle(&mut self, now: SimTime, ev: Ev) {
        match ev {
            Ev::StartAtOracle { slot } => {
                let resp = self.oracle.handle_start(now);
                self.slots[slot].start_ts = resp.ts;
                self.q
                    .schedule(resp.done + self.cfg.one_way_net, Ev::ClientHasTs { slot });
            }
            Ev::ClientHasTs { slot } => {
                let s = &mut self.slots[slot];
                if now >= self.warm_end {
                    self.lat_start.record(now - s.began);
                }
                s.op_idx = 0;
                if self.cfg.data_phase && s.template.ops() > 0 {
                    s.op_sent = now;
                    self.q
                        .schedule(now + self.cfg.one_way_net, Ev::OpAtServer { slot });
                } else {
                    s.commit_sent = now;
                    self.q
                        .schedule(now + self.cfg.one_way_net, Ev::CommitAtOracle { slot });
                }
            }
            Ev::OpAtServer { slot } => {
                let (is_read, row, start_ts) = {
                    let s = &self.slots[slot];
                    let reads = s.template.reads.len();
                    if s.op_idx < reads {
                        (true, s.template.reads[s.op_idx], s.start_ts)
                    } else {
                        (false, s.template.writes[s.op_idx - reads], s.start_ts)
                    }
                };
                let done = if is_read {
                    let out = self.data.read(row, now);
                    // Functional snapshot read through the client-replicated
                    // commit table (the oracle's authoritative copy here).
                    let core = self.oracle.core();
                    let _ = self
                        .data
                        .get_visible(row, start_ts, &|ts: Timestamp| match core.status(ts) {
                            wsi_core::TxnStatus::Committed(c) => VersionFate::Committed(c),
                            wsi_core::TxnStatus::Pending => VersionFate::Pending,
                            wsi_core::TxnStatus::Aborted => VersionFate::Aborted,
                        });
                    if self.cfg.commit_info == CommitInfo::QueryOracle {
                        // No local replica: resolve the version's writer via
                        // a status query — client receives the read, asks the
                        // oracle, waits for the answer (§2.2 fallback). The
                        // query is its own event so it reaches the oracle's
                        // queue in arrival order.
                        let at_oracle = out.done + self.cfg.one_way_net + self.cfg.one_way_net;
                        self.q.schedule(at_oracle, Ev::StatusQueryAtOracle { slot });
                        return;
                    }
                    out.done
                } else {
                    // Uncommitted data goes straight into the data store,
                    // tagged with the start timestamp (§2.2).
                    self.data
                        .apply_put(row, start_ts, Bytes::copy_from_slice(&row.to_le_bytes()));
                    // Rows at or beyond the preloaded key space are inserts.
                    let insert = row >= self.cfg.workload.rows;
                    self.data.write(row, now, insert)
                };
                self.q
                    .schedule(done + self.cfg.one_way_net, Ev::ClientOpDone { slot });
            }
            Ev::ClientOpDone { slot } => {
                let (finished_reads, more) = {
                    let s = &mut self.slots[slot];
                    let was_read = s.op_idx < s.template.reads.len();
                    s.op_idx += 1;
                    (was_read, s.op_idx < s.template.ops())
                };
                let op_latency = now - self.slots[slot].op_sent;
                if now >= self.warm_end {
                    if finished_reads {
                        self.lat_read.record(op_latency);
                    } else {
                        self.lat_write.record(op_latency);
                    }
                }
                let s = &mut self.slots[slot];
                if more {
                    s.op_sent = now;
                    self.q
                        .schedule(now + self.cfg.one_way_net, Ev::OpAtServer { slot });
                } else {
                    s.commit_sent = now;
                    self.q
                        .schedule(now + self.cfg.one_way_net, Ev::CommitAtOracle { slot });
                }
            }
            Ev::StatusQueryAtOracle { slot } => {
                let done = self.oracle.handle_status_query(now);
                self.q
                    .schedule(done + self.cfg.one_way_net, Ev::ClientOpDone { slot });
            }
            Ev::CommitAtOracle { slot } => {
                let s = &self.slots[slot];
                let req = CommitRequest::new(
                    s.start_ts,
                    s.template.reads.iter().map(|&r| RowId(r)).collect(),
                    s.template.writes.iter().map(|&r| RowId(r)).collect(),
                );
                let start_ts = s.start_ts;
                let resp = self.oracle.handle_commit(now, req);
                if let Some(ready) = resp.ready {
                    // Read-only fast path: immediate response.
                    self.q.schedule(
                        ready + self.cfg.one_way_net,
                        Ev::CommitDecided {
                            slot,
                            committed: resp.outcome.is_committed(),
                        },
                    );
                } else {
                    self.pending_commits.insert(start_ts.raw(), slot);
                    if let Some(flush) = resp.flush {
                        self.dispatch_flush(flush);
                    } else {
                        self.ensure_flush_scheduled(now);
                    }
                }
            }
            Ev::FlushDeadline => {
                self.scheduled_flush = None;
                if let Some(deadline) = self.oracle.next_flush_deadline() {
                    if deadline <= now {
                        let flush = self.oracle.flush(now);
                        self.dispatch_flush(flush);
                    } else {
                        self.ensure_flush_scheduled(now);
                    }
                }
            }
            Ev::CommitDecided { slot, committed } => {
                let commit_latency = now - self.slots[slot].commit_sent;
                let txn_latency = now - self.slots[slot].began;
                if self.in_window(now) {
                    self.lat_commit.record(commit_latency);
                    if committed {
                        self.committed += 1;
                        self.latency.record(txn_latency);
                    } else {
                        self.aborted += 1;
                    }
                }
                if !committed && self.cfg.data_phase {
                    // Abort cleanup: remove the invisible versions.
                    let s = &self.slots[slot];
                    let (start_ts, writes) = (s.start_ts, s.template.writes.clone());
                    for row in writes {
                        self.data.apply_remove(row, start_ts);
                    }
                }
                if committed && self.cfg.data_phase && self.cfg.commit_info == CommitInfo::WriteBack
                {
                    // Write the commit timestamp back beside the data: one
                    // extra (asynchronous) server write per modified row.
                    let writes = self.slots[slot].template.writes.clone();
                    for row in writes {
                        let _ = self.data.write(row, now, false);
                    }
                }
                // Closed loop: begin the next transaction immediately.
                let s = &mut self.slots[slot];
                s.template = self.workload.next_txn();
                s.began = now;
                s.op_idx = 0;
                self.q
                    .schedule(now + self.cfg.one_way_net, Ev::StartAtOracle { slot });
            }
        }
    }

    fn dispatch_flush(&mut self, flush: FlushResult) {
        for (start_ts, outcome) in flush.decisions {
            if let Some(slot) = self.pending_commits.remove(&start_ts.raw()) {
                self.q.schedule(
                    flush.ready + self.cfg.one_way_net,
                    Ev::CommitDecided {
                        slot,
                        committed: outcome.is_committed(),
                    },
                );
            }
        }
    }

    fn ensure_flush_scheduled(&mut self, now: SimTime) {
        let Some(deadline) = self.oracle.next_flush_deadline() else {
            return;
        };
        let at = deadline.max(now);
        if self.scheduled_flush != Some(at) {
            self.q.schedule(at, Ev::FlushDeadline);
            self.scheduled_flush = Some(at);
        }
    }

    fn finish(mut self) -> RunResult {
        let decided = self.committed + self.aborted;
        let elapsed = self.end - self.warm_end;
        RunResult {
            clients: self.cfg.clients,
            committed: self.committed,
            aborted: self.aborted,
            tps: self.committed as f64 / elapsed.as_secs_f64(),
            mean_latency_ms: self.latency.mean_ms(),
            p99_latency_ms: self.latency.p99_ms(),
            abort_rate: if decided == 0 {
                0.0
            } else {
                self.aborted as f64 / decided as f64
            },
            cache_hit_rate: self.data.mean_cache_hit_rate(),
            oracle_cpu_utilization: self.oracle.cpu_utilization(self.end),
            ops: OpLatencySummary {
                start_ms: self.lat_start.mean_ms(),
                read_ms: self.lat_read.mean_ms(),
                write_ms: self.lat_write.mean_ms(),
                commit_ms: self.lat_commit.mean_ms(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsi_core::IsolationLevel;
    use wsi_workload::{KeyDistribution, Mix};

    fn small_hbase(level: IsolationLevel, clients: usize) -> ClusterConfig {
        let mut cfg =
            ClusterConfig::hbase(level, clients, KeyDistribution::Uniform, Mix::Complex, 7);
        cfg.workload.rows = 100_000;
        cfg.warmup = SimTime::from_secs(1);
        cfg.measure = SimTime::from_secs(4);
        cfg
    }

    #[test]
    fn closed_loop_run_completes_and_measures() {
        let result = Runner::new(small_hbase(IsolationLevel::WriteSnapshot, 4)).run();
        assert!(result.committed > 10, "committed {}", result.committed);
        assert!(result.tps > 1.0);
        assert!(result.mean_latency_ms > 1.0);
        assert!(result.p99_latency_ms >= result.mean_latency_ms);
    }

    #[test]
    fn uniform_low_load_has_near_zero_aborts() {
        // §6.4: "the probability of accessing the same row by two
        // transactions is low and the abort rate will be close to zero."
        let result = Runner::new(small_hbase(IsolationLevel::WriteSnapshot, 4)).run();
        assert!(result.abort_rate < 0.02, "abort rate {}", result.abort_rate);
    }

    #[test]
    fn determinism_same_seed_same_result() {
        let a = Runner::new(small_hbase(IsolationLevel::Snapshot, 3)).run();
        let b = Runner::new(small_hbase(IsolationLevel::Snapshot, 3)).run();
        assert_eq!(a.committed, b.committed);
        assert_eq!(a.aborted, b.aborted);
        assert_eq!(a.mean_latency_ms, b.mean_latency_ms);
    }

    #[test]
    fn fig5_mode_reaches_high_throughput() {
        let cfg = ClusterConfig::fig5(IsolationLevel::WriteSnapshot, 4, 11);
        let result = Runner::new(cfg).run();
        assert!(result.tps > 10_000.0, "oracle-only tps {}", result.tps);
        assert!(result.ops.read_ms == 0.0, "no data phase expected");
    }

    #[test]
    fn more_clients_do_not_reduce_throughput_much() {
        let few = Runner::new(small_hbase(IsolationLevel::WriteSnapshot, 2)).run();
        let many = Runner::new(small_hbase(IsolationLevel::WriteSnapshot, 16)).run();
        assert!(
            many.tps > few.tps * 1.5,
            "few {} many {}",
            few.tps,
            many.tps
        );
    }
}

//! Cluster-experiment configuration.

use wsi_core::IsolationLevel;

use wsi_kvstore::{Routing, ServerConfig};
use wsi_oracle::OracleConfig;
use wsi_sim::SimTime;
use wsi_workload::{KeyDistribution, Mix, WorkloadSpec};

/// Where readers obtain the commit timestamps that resolve version
/// visibility (§2.2, Appendix A: "a read-only copy of the commit timestamps
/// could be maintained in (i) data servers, beside the actual data, or
/// (ii) the clients").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitInfo {
    /// Replicated on the clients — the configuration the paper evaluates.
    /// Reads resolve locally; the oracle ships its commit stream to clients
    /// out of band (not a per-read cost).
    ClientReplica,
    /// No replica anywhere: every read of a versioned row asks the status
    /// oracle for the writer's status — an extra round trip per read and
    /// extra load on the oracle ("to reduce the load of performing this
    /// check on the status oracle", Appendix A, is why the paper avoids it).
    QueryOracle,
    /// Written back into the data servers beside the data: reads resolve at
    /// the server, but every commit triggers one extra server write per
    /// modified row to stamp the commit timestamp.
    WriteBack,
}

/// Everything one simulated experiment run needs.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Isolation level under test.
    pub level: IsolationLevel,
    /// RNG seed; runs with equal seeds are bit-identical.
    pub seed: u64,
    /// Number of client machines.
    pub clients: usize,
    /// Outstanding transactions per client: 1 for the closed-loop HBase
    /// experiments (§6.4: "the client runs one transaction at a time"),
    /// 100 for the oracle stress test (§6.3).
    pub outstanding_per_client: usize,
    /// Whether transactions execute a data phase against the region servers
    /// (`false` reproduces §6.3's "execution time of zero").
    pub data_phase: bool,
    /// Region-server count (the paper deploys 25).
    pub servers: usize,
    /// Workload shape.
    pub workload: WorkloadSpec,
    /// One-way client↔server network latency.
    pub one_way_net: SimTime,
    /// Region routing policy.
    pub routing: Routing,
    /// Pre-warm block caches to their steady state before the run (§6.5
    /// experiments); disable to measure a cold cluster (§6.2 microbench).
    pub prewarm: bool,
    /// Commit-timestamp deployment (§2.2): where readers resolve visibility.
    pub commit_info: CommitInfo,
    /// Warm-up time excluded from measurement.
    pub warmup: SimTime,
    /// Measurement window.
    pub measure: SimTime,
    /// Region-server timing model.
    pub server: ServerConfig,
    /// Status-oracle model.
    pub oracle: OracleConfig,
}

impl ClusterConfig {
    /// The §6.3 status-oracle stress configuration: `clients` clients with
    /// 100 outstanding zero-execution-time complex transactions over 20 M
    /// rows.
    pub fn fig5(level: IsolationLevel, clients: usize, seed: u64) -> Self {
        ClusterConfig {
            level,
            seed,
            clients,
            outstanding_per_client: 100,
            data_phase: false,
            servers: 25,
            workload: WorkloadSpec {
                distribution: KeyDistribution::Uniform,
                mix: Mix::Complex,
                ..WorkloadSpec::paper_default()
            },
            one_way_net: SimTime::from_us(80),
            routing: Routing::Hash,
            prewarm: false, // no data phase: nothing to warm
            commit_info: CommitInfo::ClientReplica,
            warmup: SimTime::from_secs(1),
            measure: SimTime::from_secs(2),
            server: ServerConfig::paper_default(),
            oracle: OracleConfig::paper_default(level),
        }
    }

    /// The §6.4–6.5 HBase configurations: closed-loop clients, full data
    /// phase, 25 servers, the requested distribution and mix.
    pub fn hbase(
        level: IsolationLevel,
        clients: usize,
        distribution: KeyDistribution,
        mix: Mix,
        seed: u64,
    ) -> Self {
        ClusterConfig {
            level,
            seed,
            clients,
            outstanding_per_client: 1,
            data_phase: true,
            servers: 25,
            workload: WorkloadSpec {
                distribution,
                mix,
                ..WorkloadSpec::paper_default()
            },
            one_way_net: SimTime::from_us(80),
            routing: Routing::Hash,
            prewarm: true,
            commit_info: CommitInfo::ClientReplica,
            warmup: SimTime::from_secs(40),
            measure: SimTime::from_secs(40),
            server: ServerConfig::paper_default(),
            oracle: OracleConfig::paper_default(level),
        }
    }
}

//! The paper's experiments, one function per table/figure.
//!
//! Each returns labelled [`Series`] ready for the `wsi-bench` figure
//! harness. Client sweeps follow the paper: powers of two from 1 to 64 for
//! the oracle stress test (§6.3), and 5, 10, 20, …, 640 for the HBase
//! experiments (§6.4).

use wsi_core::IsolationLevel;
use wsi_sim::metrics::Series;
use wsi_workload::{KeyDistribution, Mix};

use crate::{config::ClusterConfig, runner::OpLatencySummary, Runner};

/// The client sweep of the HBase experiments (§6.4).
pub const HBASE_CLIENTS: [usize; 8] = [5, 10, 20, 40, 80, 160, 320, 640];

/// The client sweep of the status-oracle stress test (§6.3).
pub const ORACLE_CLIENTS: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];

fn levels() -> [IsolationLevel; 2] {
    [IsolationLevel::WriteSnapshot, IsolationLevel::Snapshot]
}

/// §6.2 microbenchmark: per-operation latency with one client.
///
/// Paper numbers: start 0.17 ms, random read 38.8 ms, write 1.13 ms,
/// commit 4.1 ms.
pub fn microbench(seed: u64) -> OpLatencySummary {
    let mut cfg = ClusterConfig::hbase(
        IsolationLevel::WriteSnapshot,
        1,
        KeyDistribution::Uniform,
        Mix::Complex,
        seed,
    );
    // One lightly-loaded client over the full 20 M-row table with a cold
    // cache: every random read is a miss, as in the paper's cold 100 GB
    // table ("a random read, therefore, causes an IO operation").
    cfg.prewarm = false;
    cfg.warmup = wsi_sim::SimTime::from_secs(2);
    cfg.measure = wsi_sim::SimTime::from_secs(30);
    Runner::new(cfg).run().ops
}

/// Figure 5: status-oracle latency vs throughput, SI vs WSI.
pub fn fig5(seed: u64) -> Vec<Series> {
    levels()
        .iter()
        .map(|&level| {
            let mut series = Series::new(level.short_name());
            for &clients in &ORACLE_CLIENTS {
                let result = Runner::new(ClusterConfig::fig5(level, clients, seed)).run();
                series.push(result.to_point(clients as f64));
            }
            series
        })
        .collect()
}

/// One HBase sweep (shared engine for Figures 6–10).
pub fn hbase_sweep(
    distribution: KeyDistribution,
    mix: Mix,
    seed: u64,
    clients: &[usize],
) -> Vec<Series> {
    levels()
        .iter()
        .map(|&level| {
            let mut series = Series::new(level.short_name());
            for &n in clients {
                let cfg = ClusterConfig::hbase(level, n, distribution, mix, seed);
                let result = Runner::new(cfg).run();
                series.push(result.to_point(n as f64));
            }
            series
        })
        .collect()
}

/// Figure 6: latency vs throughput with the uniform distribution
/// (complex workload; §6.4 "each transaction updates n rows, randomly
/// selected with a uniform distribution on 20M rows").
pub fn fig6(seed: u64) -> Vec<Series> {
    hbase_sweep(KeyDistribution::Uniform, Mix::Complex, seed, &HBASE_CLIENTS)
}

/// Figures 7 and 8: performance and abort rate under the zipfian
/// distribution (mixed workload). One simulation produces both figures —
/// Figure 7 reads `(tps, latency_ms)`, Figure 8 reads `(tps, abort_rate)`.
pub fn fig7_fig8(seed: u64) -> Vec<Series> {
    hbase_sweep(KeyDistribution::Zipfian, Mix::Mixed, seed, &HBASE_CLIENTS)
}

/// Figures 9 and 10: performance and abort rate under zipfianLatest.
pub fn fig9_fig10(seed: u64) -> Vec<Series> {
    hbase_sweep(
        KeyDistribution::ZipfianLatest,
        Mix::Mixed,
        seed,
        &HBASE_CLIENTS,
    )
}

/// Ablation A1 — Algorithm 3's memory bound: abort rate vs `lastCommit`
/// capacity `NR` under the oracle stress workload.
///
/// Appendix A argues that with memory for the last ~50 seconds of commits,
/// `T_max` aborts vanish; shrinking `NR` below the concurrency window makes
/// them dominate. Each point runs the Figure 5 configuration with a bounded
/// table; `load` is `NR`, `abort_rate` includes the pessimistic aborts.
pub fn ablation_nr(seed: u64) -> Vec<Series> {
    let mut series = Series::new("wsi_bounded");
    for &capacity in &[100usize, 1_000, 10_000, 100_000, 1_000_000] {
        let mut cfg = ClusterConfig::fig5(IsolationLevel::WriteSnapshot, 8, seed);
        cfg.oracle.last_commit_capacity = Some(capacity);
        let result = Runner::new(cfg).run();
        series.push(result.to_point(capacity as f64));
    }
    // Reference point: the unbounded oracle (Algorithm 2).
    let unbounded = Runner::new(ClusterConfig::fig5(IsolationLevel::WriteSnapshot, 8, seed)).run();
    let mut reference = Series::new("wsi_unbounded");
    reference.push(unbounded.to_point(f64::INFINITY));
    vec![series, reference]
}

/// Ablation A2 — region routing under zipfianLatest: HBase-native range
/// partitioning funnels all fresh-key traffic into the tail region (the
/// classic sequential-key hotspot), while YCSB's hashed keys scatter it.
pub fn ablation_routing(seed: u64) -> Vec<Series> {
    use wsi_kvstore::Routing;
    [Routing::Hash, Routing::Range]
        .iter()
        .map(|&routing| {
            let label = match routing {
                Routing::Hash => "hashed_keys",
                Routing::Range => "range_partitioned",
            };
            let mut series = Series::new(label);
            for &clients in &[10usize, 40, 160] {
                let mut cfg = ClusterConfig::hbase(
                    IsolationLevel::WriteSnapshot,
                    clients,
                    KeyDistribution::ZipfianLatest,
                    Mix::Mixed,
                    seed,
                );
                cfg.routing = routing;
                let result = Runner::new(cfg).run();
                series.push(result.to_point(clients as f64));
            }
            series
        })
        .collect()
}

/// Ablation A4 — commit-timestamp deployment (§2.2 / Appendix A): client
/// replica (the paper's configuration) vs per-read oracle status queries vs
/// write-back into the data servers. Reported per mode at a moderate load.
pub fn ablation_commit_info(seed: u64) -> Vec<CommitInfoPoint> {
    use crate::config::CommitInfo;
    let mut out = Vec::new();
    for &(mode, label) in &[
        (CommitInfo::ClientReplica, "client_replica"),
        (CommitInfo::QueryOracle, "query_oracle"),
        (CommitInfo::WriteBack, "write_back"),
    ] {
        for &clients in &[20usize, 80, 320] {
            let mut cfg = ClusterConfig::hbase(
                IsolationLevel::WriteSnapshot,
                clients,
                KeyDistribution::Zipfian,
                Mix::Mixed,
                seed,
            );
            cfg.commit_info = mode;
            let result = Runner::new(cfg).run();
            out.push(CommitInfoPoint {
                mode: label,
                clients,
                tps: result.tps,
                latency_ms: result.mean_latency_ms,
                oracle_cpu: result.oracle_cpu_utilization,
            });
        }
    }
    out
}

/// One row of the commit-info deployment ablation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommitInfoPoint {
    /// Deployment mode label.
    pub mode: &'static str,
    /// Client count.
    pub clients: usize,
    /// Committed transactions per second.
    pub tps: f64,
    /// Mean transaction latency.
    pub latency_ms: f64,
    /// Status-oracle critical-section utilization — the §2.2 concern: the
    /// query mode multiplies oracle load by the read rate.
    pub oracle_cpu: f64,
}

/// Ablation A3 — analytical transactions (§5.2): enumerated vs compact
/// (range) read sets.
///
/// An OLTP stream runs against the oracle while periodic analytical
/// transactions scan a fraction of the key space. Enumerating the scanned
/// rows makes the commit request huge; the range representation is a few
/// bytes but over-approximates (it may cover rows the scan never actually
/// returned). Reported per scan width: the analytical abort probability
/// under both representations and the request sizes in row entries.
pub fn analytical_read_sets(seed: u64) -> Vec<AnalyticalPoint> {
    use wsi_core::{CommitRequest, RowId, RowRange, StatusOracleCore};
    use wsi_sim::SimRng;

    const ROWS: u64 = 1_000_000;
    const OLTP_BETWEEN_SCANS: usize = 200;
    const SCANS: usize = 200;

    let mut out = Vec::new();
    for &width in &[100u64, 1_000, 10_000, 100_000] {
        let mut aborts_enumerated = 0u32;
        let mut aborts_range = 0u32;
        for mode in 0..2 {
            let mut oracle = StatusOracleCore::unbounded(IsolationLevel::WriteSnapshot);
            let mut rng = SimRng::new(seed ^ width ^ mode);
            for _ in 0..SCANS {
                let scan_start = oracle.begin();
                let lo = rng.below(ROWS - width);
                // Concurrent OLTP traffic commits during the scan.
                for _ in 0..OLTP_BETWEEN_SCANS {
                    let t = oracle.begin();
                    let row = RowId(rng.below(ROWS));
                    let _ = oracle.commit(CommitRequest::new(t, vec![row], vec![row]));
                }
                // The scan "actually read" half of the rows in its range.
                let req = if mode == 0 {
                    let reads: Vec<RowId> = (lo..lo + width).step_by(2).map(RowId).collect();
                    CommitRequest::new(scan_start, reads, vec![RowId(ROWS + 1)])
                } else {
                    CommitRequest::new(scan_start, vec![], vec![RowId(ROWS + 1)])
                        .with_read_ranges(vec![RowRange::new(lo, lo + width)])
                };
                if oracle.commit(req).is_aborted() {
                    if mode == 0 {
                        aborts_enumerated += 1;
                    } else {
                        aborts_range += 1;
                    }
                }
            }
        }
        out.push(AnalyticalPoint {
            scan_width: width,
            enumerated_abort_rate: f64::from(aborts_enumerated) / SCANS as f64,
            range_abort_rate: f64::from(aborts_range) / SCANS as f64,
            enumerated_entries: width / 2,
            range_entries: 1,
        });
    }
    out
}

/// One row of the analytical-read-set ablation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalyticalPoint {
    /// Rows covered by the scan's range.
    pub scan_width: u64,
    /// Abort probability with the enumerated read set.
    pub enumerated_abort_rate: f64,
    /// Abort probability with the compact range read set.
    pub range_abort_rate: f64,
    /// Row entries submitted when enumerating.
    pub enumerated_entries: u64,
    /// Entries submitted with the range representation.
    pub range_entries: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    // Experiment smoke tests run shrunk sweeps (full sweeps live in the
    // bench harness); they assert the headline *shapes*, not magnitudes.

    #[test]
    fn fig5_si_and_wsi_are_comparable_until_saturation() {
        let mut series = fig5_small();
        let wsi = series.remove(0);
        let si = series.remove(0);
        assert_eq!(wsi.label, "wsi");
        assert_eq!(si.label, "si");
        // At the lowest load the latencies are within 30%.
        let (w0, s0) = (&wsi.points[0], &si.points[0]);
        assert!((w0.latency_ms - s0.latency_ms).abs() / s0.latency_ms < 0.3);
        // SI's peak throughput is >= WSI's (2× memory-item loads).
        assert!(si.peak_tps() >= wsi.peak_tps() * 0.98);
    }

    fn fig5_small() -> Vec<Series> {
        [IsolationLevel::WriteSnapshot, IsolationLevel::Snapshot]
            .iter()
            .map(|&level| {
                let mut s = Series::new(level.short_name());
                for &clients in &[1usize, 8] {
                    let mut cfg = ClusterConfig::fig5(level, clients, 3);
                    cfg.warmup = wsi_sim::SimTime::from_ms(500);
                    cfg.measure = wsi_sim::SimTime::from_secs(1);
                    s.push(Runner::new(cfg).run().to_point(clients as f64));
                }
                s
            })
            .collect()
    }

    #[test]
    fn analytical_ranges_trade_size_for_aborts() {
        let points = analytical_read_sets(3);
        for p in &points {
            // The compact representation is orders of magnitude smaller...
            assert_eq!(p.range_entries, 1);
            assert!(p.enumerated_entries >= 50);
            // ...but over-approximates: it can only add aborts.
            assert!(
                p.range_abort_rate >= p.enumerated_abort_rate - 0.05,
                "width {}: range {} vs enumerated {}",
                p.scan_width,
                p.range_abort_rate,
                p.enumerated_abort_rate
            );
        }
        // Wider scans conflict more (§5.2: "the larger the read set, the
        // higher is the probability of a read-write conflict").
        let first = &points[0];
        let last = points.last().unwrap();
        assert!(last.range_abort_rate > first.range_abort_rate);
    }

    #[test]
    fn zipfian_beats_uniform_throughput() {
        // §6.5: cache locality gives zipfian better throughput and latency.
        let mk = |dist| {
            let mut cfg =
                ClusterConfig::hbase(IsolationLevel::WriteSnapshot, 40, dist, Mix::Mixed, 5);
            // Full-size key space: the cache (≈2 M rows) must not cover it,
            // otherwise the uniform workload would be fully cached too.
            cfg.warmup = wsi_sim::SimTime::from_secs(2);
            cfg.measure = wsi_sim::SimTime::from_secs(8);
            Runner::new(cfg).run()
        };
        let uniform = mk(KeyDistribution::Uniform);
        let zipf = mk(KeyDistribution::Zipfian);
        assert!(
            zipf.tps > uniform.tps,
            "zipf {} vs uniform {}",
            zipf.tps,
            uniform.tps
        );
        assert!(zipf.cache_hit_rate > uniform.cache_hit_rate);
    }
}

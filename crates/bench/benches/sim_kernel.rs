//! Criterion benchmarks of the simulation kernel: these bound how much
//! virtual time per wall-clock second the figure harness can chew through.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use wsi_sim::{EventQueue, ScrambledZipfian, SimRng, SimTime, Station, Zipfian};

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_event_queue");
    group.throughput(Throughput::Elements(1));
    group.bench_function("schedule_pop_interleaved", |b| {
        let mut q: EventQueue<u64> = EventQueue::new();
        // Keep a standing population of ~1000 events.
        for i in 0..1000u64 {
            q.schedule_after(SimTime(i % 997 + 1), i);
        }
        b.iter(|| {
            let (_, e) = q.pop().expect("population maintained");
            q.schedule_after(SimTime(e % 997 + 1), e);
            std::hint::black_box(e)
        });
    });
    group.finish();
}

fn bench_station(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_station");
    group.throughput(Throughput::Elements(1));
    for servers in [1usize, 8] {
        group.bench_function(format!("submit_{servers}_servers"), |b| {
            let mut s = Station::new(servers);
            let mut now = SimTime::ZERO;
            b.iter(|| {
                now += SimTime(3);
                std::hint::black_box(s.submit(now, SimTime(5)))
            });
        });
    }
    group.finish();
}

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_generators");
    group.throughput(Throughput::Elements(1));
    group.bench_function("zipfian_20m", |b| {
        let mut z = Zipfian::new(20_000_000);
        let mut rng = SimRng::new(1);
        b.iter(|| std::hint::black_box(z.next(&mut rng)));
    });
    group.bench_function("scrambled_zipfian_20m", |b| {
        let mut z = ScrambledZipfian::new(20_000_000);
        let mut rng = SimRng::new(2);
        b.iter(|| std::hint::black_box(z.next(&mut rng)));
    });
    group.bench_function("uniform_draw", |b| {
        let mut rng = SimRng::new(3);
        b.iter(|| std::hint::black_box(rng.below(20_000_000)));
    });
    group.finish();
}

criterion_group!(benches, bench_event_queue, bench_station, bench_generators);
criterion_main!(benches);

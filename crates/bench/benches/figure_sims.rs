//! One Criterion bench per paper figure, on shrunk configurations.
//!
//! `cargo bench` therefore exercises every experiment's code path and tracks
//! simulation-host performance regressions. The *publication-scale* runs —
//! full client sweeps, full durations — live in the `figures` binary
//! (`cargo run -p wsi-bench --release --bin figures`), whose output is
//! recorded in EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, Criterion};
use wsi_cluster::{ClusterConfig, Runner};
use wsi_core::IsolationLevel;
use wsi_sim::SimTime;
use wsi_workload::{KeyDistribution, Mix};

fn shrunk_hbase(dist: KeyDistribution, mix: Mix) -> ClusterConfig {
    let mut cfg = ClusterConfig::hbase(IsolationLevel::WriteSnapshot, 20, dist, mix, 42);
    cfg.warmup = SimTime::from_secs(1);
    cfg.measure = SimTime::from_secs(3);
    cfg
}

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure_sims");
    group.sample_size(10);

    group.bench_function("m1_microbench_path", |b| {
        b.iter(|| {
            let mut cfg = ClusterConfig::hbase(
                IsolationLevel::WriteSnapshot,
                1,
                KeyDistribution::Uniform,
                Mix::Complex,
                42,
            );
            cfg.warmup = SimTime::from_secs(1);
            cfg.measure = SimTime::from_secs(3);
            std::hint::black_box(Runner::new(cfg).run().ops)
        });
    });

    group.bench_function("fig5_oracle_stress_point", |b| {
        b.iter(|| {
            let mut cfg = ClusterConfig::fig5(IsolationLevel::WriteSnapshot, 4, 42);
            cfg.warmup = SimTime::from_ms(200);
            cfg.measure = SimTime::from_ms(800);
            std::hint::black_box(Runner::new(cfg).run().tps)
        });
    });

    group.bench_function("fig6_uniform_point", |b| {
        b.iter(|| {
            std::hint::black_box(
                Runner::new(shrunk_hbase(KeyDistribution::Uniform, Mix::Complex))
                    .run()
                    .tps,
            )
        });
    });

    group.bench_function("fig7_fig8_zipfian_point", |b| {
        b.iter(|| {
            let r = Runner::new(shrunk_hbase(KeyDistribution::Zipfian, Mix::Mixed)).run();
            std::hint::black_box((r.tps, r.abort_rate))
        });
    });

    group.bench_function("fig9_fig10_latest_point", |b| {
        b.iter(|| {
            let r = Runner::new(shrunk_hbase(KeyDistribution::ZipfianLatest, Mix::Mixed)).run();
            std::hint::black_box((r.tps, r.abort_rate))
        });
    });

    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);

//! Ablation: WAL batching factor (paper Appendix A).
//!
//! "With a batching factor of 10, BookKeeper is able to persist data of
//! 200K TPS." This bench sweeps the batch-size trigger and measures the
//! ledger's record throughput and achieved batching factor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use wsi_wal::{BatchPolicy, Ledger, LedgerConfig, TxnLogRecord};

fn commit_record(i: u64) -> bytes::Bytes {
    wsi_wal::encode_record(&TxnLogRecord::Commit {
        start_ts: i,
        commit_ts: i + 1,
        write_rows: vec![i; 10], // the paper's 10-rows-per-txn average
    })
}

fn bench_batch_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal_batching");
    group.throughput(Throughput::Elements(1));
    for max_bytes in [0usize, 256, 1024, 4096, 16_384] {
        group.bench_with_input(
            BenchmarkId::new("append_flush", max_bytes),
            &max_bytes,
            |b, &max_bytes| {
                let mut ledger = Ledger::open(LedgerConfig {
                    replicas: 3,
                    ack_quorum: 2,
                    batch: BatchPolicy {
                        max_bytes,
                        max_delay_us: 5_000,
                    },
                    flush_delay_us: 0,
                });
                let mut i = 0u64;
                b.iter(|| {
                    ledger.append(commit_record(i), i);
                    i += 1;
                    // Size-triggered group commit (time trigger not exercised:
                    // `now` advances 1 µs per record).
                    std::hint::black_box(ledger.maybe_flush(i).unwrap())
                });
            },
        );
    }
    group.finish();
}

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal_recovery");
    for records in [1_000u64, 10_000] {
        group.bench_with_input(
            BenchmarkId::new("recover", records),
            &records,
            |b, &records| {
                let mut ledger = Ledger::open(LedgerConfig::default_replicated());
                for i in 0..records {
                    ledger.append(commit_record(i), i);
                    ledger.maybe_flush(i).unwrap();
                }
                ledger.flush(records).unwrap();
                b.iter(|| std::hint::black_box(ledger.recover().len()));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_batch_sweep, bench_recovery);
criterion_main!(benches);

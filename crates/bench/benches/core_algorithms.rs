//! Criterion benchmarks of the core conflict-detection algorithms.
//!
//! These measure the status oracle's *functional* hot path — the critical
//! section whose cost decides Figure 5's saturation points: commit-request
//! processing under SI (Algorithm 1), WSI (Algorithm 2), and the
//! memory-bounded Algorithm 3 variants, plus the read-only fast path.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::{rngs::SmallRng, Rng, SeedableRng};
use wsi_core::{CommitRequest, IsolationLevel, RowId, StatusOracleCore};

/// A pre-generated batch of commit requests mimicking the §6.3 complex
/// workload: ~5 reads + ~5 writes uniform over 20 M rows.
fn requests(oracle: &mut StatusOracleCore, count: usize, seed: u64) -> Vec<CommitRequest> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let ts = oracle.begin();
            let reads: Vec<RowId> = (0..rng.gen_range(0..=10))
                .map(|_| RowId(rng.gen_range(0..20_000_000)))
                .collect();
            let writes: Vec<RowId> = (0..rng.gen_range(0..=10))
                .map(|_| RowId(rng.gen_range(0..20_000_000)))
                .collect();
            CommitRequest::new(ts, reads, writes)
        })
        .collect()
}

fn bench_commit_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("oracle_commit");
    group.throughput(Throughput::Elements(1));
    for (name, level, capacity) in [
        ("si_unbounded", IsolationLevel::Snapshot, None),
        ("wsi_unbounded", IsolationLevel::WriteSnapshot, None),
        ("si_bounded_1m", IsolationLevel::Snapshot, Some(1 << 20)),
        (
            "wsi_bounded_1m",
            IsolationLevel::WriteSnapshot,
            Some(1 << 20),
        ),
    ] {
        group.bench_function(name, |b| {
            let mut oracle = match capacity {
                Some(cap) => StatusOracleCore::bounded(level, cap),
                None => StatusOracleCore::unbounded(level),
            };
            let reqs = requests(&mut oracle, 10_000, 42);
            let mut i = 0;
            b.iter(|| {
                let req = reqs[i % reqs.len()].clone();
                i += 1;
                std::hint::black_box(oracle.commit(req))
            });
        });
    }
    group.finish();
}

fn bench_read_only_fast_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("oracle_read_only");
    group.throughput(Throughput::Elements(1));
    group.bench_function("wsi_read_only_commit", |b| {
        let mut oracle = StatusOracleCore::unbounded(IsolationLevel::WriteSnapshot);
        let starts: Vec<_> = (0..100_000).map(|_| oracle.begin()).collect();
        let mut i = 0;
        b.iter(|| {
            let ts = starts[i % starts.len()];
            i += 1;
            std::hint::black_box(oracle.commit(CommitRequest::read_only(ts)))
        });
    });
    group.finish();
}

fn bench_begin(c: &mut Criterion) {
    let mut group = c.benchmark_group("oracle_begin");
    group.throughput(Throughput::Elements(1));
    group.bench_function("begin", |b| {
        let mut oracle = StatusOracleCore::unbounded(IsolationLevel::WriteSnapshot);
        b.iter(|| std::hint::black_box(oracle.begin()));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_commit_throughput,
    bench_read_only_fast_path,
    bench_begin
);
criterion_main!(benches);

//! Criterion benchmarks of the history-analysis tooling: parsing, oracle
//! replay, DSG construction, and cycle detection.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::{rngs::SmallRng, Rng, SeedableRng};
use wsi_core::IsolationLevel;
use wsi_history::{accept, dsg, serialize, History, Op, TxnId};

/// Builds a random history of `txns` transactions over `items` items.
fn random_history(txns: u32, items: u32, seed: u64) -> History {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut ops = Vec::new();
    let mut live: Vec<u32> = Vec::new();
    let mut next = 1u32;
    while next <= txns || !live.is_empty() {
        // Start a new transaction or advance a live one.
        if next <= txns && (live.len() < 4 || rng.gen_bool(0.3)) {
            live.push(next);
            next += 1;
        }
        if live.is_empty() {
            continue;
        }
        let pick = rng.gen_range(0..live.len());
        let t = TxnId(live[pick]);
        match rng.gen_range(0..4) {
            0 => ops.push(Op::Read(t, format!("i{}", rng.gen_range(0..items)))),
            1 => ops.push(Op::Write(t, format!("i{}", rng.gen_range(0..items)))),
            _ => {
                ops.push(Op::Commit(t));
                live.remove(pick);
            }
        }
    }
    History::new(ops)
}

fn bench_parse(c: &mut Criterion) {
    let text = random_history(100, 10, 1).to_string();
    let mut group = c.benchmark_group("history_parse");
    group.throughput(Throughput::Bytes(text.len() as u64));
    group.bench_function("parse_100_txns", |b| {
        b.iter(|| std::hint::black_box(text.parse::<History>().unwrap()));
    });
    group.finish();
}

fn bench_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("history_replay");
    for txns in [50u32, 200] {
        let h = random_history(txns, 10, 2);
        group.throughput(Throughput::Elements(u64::from(txns)));
        for level in [IsolationLevel::Snapshot, IsolationLevel::WriteSnapshot] {
            group.bench_with_input(BenchmarkId::new(level.short_name(), txns), &h, |b, h| {
                b.iter(|| std::hint::black_box(accept::replay(h, level)))
            });
        }
    }
    group.finish();
}

fn bench_dsg(c: &mut Criterion) {
    let mut group = c.benchmark_group("history_dsg");
    for txns in [20u32, 80] {
        let h = random_history(txns, 8, 3);
        group.bench_with_input(BenchmarkId::new("build_and_check", txns), &h, |b, h| {
            b.iter(|| std::hint::black_box(dsg::is_serializable(h)));
        });
    }
    group.finish();
}

fn bench_serial_construction(c: &mut Criterion) {
    let h = random_history(100, 10, 4);
    let mut group = c.benchmark_group("history_serialize");
    group.bench_function("serial_h_100_txns", |b| {
        b.iter(|| std::hint::black_box(serialize::serial(&h)));
    });
    group.bench_function("equivalence_100_txns", |b| {
        let s = serialize::serial(&h);
        b.iter(|| std::hint::black_box(serialize::equivalent(&h, &s)));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_parse,
    bench_replay,
    bench_dsg,
    bench_serial_construction
);
criterion_main!(benches);

//! Criterion benchmarks of the embedded store: lock-free SI/WSI commits vs
//! the Percolator lock-based baseline, read paths, and GC.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use rand::{rngs::SmallRng, Rng, SeedableRng};
use wsi_core::IsolationLevel;
use wsi_store::{percolator::PercolatorDb, Db, DbOptions};

fn key(i: u64) -> Vec<u8> {
    format!("row{i:08}").into_bytes()
}

fn bench_lockfree_commit(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_commit");
    group.throughput(Throughput::Elements(1));
    for (name, level) in [
        ("si", IsolationLevel::Snapshot),
        ("wsi", IsolationLevel::WriteSnapshot),
    ] {
        group.bench_function(format!("lockfree_{name}_rmw_5rows"), |b| {
            let db = Db::open(DbOptions::new(level));
            let mut rng = SmallRng::seed_from_u64(7);
            b.iter(|| {
                let mut t = db.begin();
                for _ in 0..5 {
                    let k = key(rng.gen_range(0..1_000_000));
                    let _ = t.get(&k);
                    t.put(&k, b"value");
                }
                std::hint::black_box(t.commit().ok())
            });
        });
    }
    group.bench_function("percolator_si_rmw_5rows", |b| {
        let db = PercolatorDb::open();
        let mut rng = SmallRng::seed_from_u64(7);
        b.iter(|| {
            let mut t = db.begin();
            for _ in 0..5 {
                let k = key(rng.gen_range(0..1_000_000));
                let _ = t.get(&k);
                t.put(&k, b"value");
            }
            std::hint::black_box(t.commit().ok())
        });
    });
    group.finish();
}

fn bench_reads(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_read");
    group.throughput(Throughput::Elements(1));
    let db = Db::open(DbOptions::new(IsolationLevel::WriteSnapshot));
    let mut seed = db.begin();
    for i in 0..100_000u64 {
        seed.put(&key(i), b"value");
    }
    seed.commit().unwrap();
    group.bench_function("snapshot_get", |b| {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut t = db.begin();
        b.iter(|| {
            let k = key(rng.gen_range(0..100_000));
            std::hint::black_box(t.get(&k))
        });
    });
    group.bench_function("read_only_txn_10_gets", |b| {
        let mut rng = SmallRng::seed_from_u64(10);
        b.iter(|| {
            let mut t = db.begin();
            for _ in 0..10 {
                let k = key(rng.gen_range(0..100_000));
                std::hint::black_box(t.get(&k));
            }
            t.commit().unwrap()
        });
    });
    group.bench_function("scan_100", |b| {
        let mut t = db.begin();
        b.iter(|| std::hint::black_box(t.scan(b"row00050000", None, 100)));
    });
    group.finish();
}

fn bench_gc(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_gc");
    group.bench_function("gc_10k_superseded_versions", |b| {
        b.iter_batched(
            || {
                let db = Db::open(DbOptions::new(IsolationLevel::WriteSnapshot));
                for round in 0..10 {
                    let mut t = db.begin();
                    for i in 0..1_000u64 {
                        t.put(&key(i), format!("v{round}").as_bytes());
                    }
                    t.commit().unwrap();
                }
                db
            },
            |db| std::hint::black_box(db.gc()),
            BatchSize::LargeInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_lockfree_commit, bench_reads, bench_gc);
criterion_main!(benches);

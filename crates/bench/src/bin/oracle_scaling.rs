//! Commit-decision throughput of the status oracle: sharded vs. serialized,
//! across threads × shards × contention.
//!
//! ```text
//! cargo run -p wsi-bench --release --bin oracle_scaling
//! cargo run -p wsi-bench --release --bin oracle_scaling -- 4000 50
//! #                                       ops per thread ^    ^ think time (µs)
//! ```
//!
//! This measures the decision path in isolation — `begin` from the shared
//! atomic counter, then one WSI read-two-write-one commit decision per op —
//! with no version store or WAL in the way, so the numbers isolate exactly
//! the critical section this PR shards. Backends:
//!
//! * `mutex`      — the pre-sharding path: one `StatusOracleCore` behind one
//!   mutex, every decision serialized (the store's `OracleMode::Serial`).
//! * `sharded-N`  — `ConcurrentOracle` with N `lastCommit` shards.
//!
//! Contention regimes:
//!
//! * `low`  — each thread owns a private 64-row range: decisions touch
//!   disjoint shards and should scale.
//! * `high` — all threads hammer the same 64 hot rows: decisions pile onto
//!   the same shards and mutual exclusion (plus conflict aborts) dominates.
//!
//! Each regime runs twice: `raw` (think = 0, back-to-back decisions — the
//! honest single-thread comparison of the two backends' fixed costs; these
//! cells run 10× the ops and keep the best of three repeats, since
//! millisecond-scale cells are otherwise at the mercy of the scheduler) and
//! `think` (each op sleeps a client think time before its decision,
//! modelling the paper's deployment where the oracle serves many concurrent
//! clients over a network: the oracle is busy only a fraction of each
//! client's cycle, so overlapping clients expose how much decision
//! concurrency the backend admits — including on machines with few cores,
//! where sleeps overlap even though spins cannot).
//!
//! A decision = one commit or one conflict abort. Results go to stdout and
//! `BENCH_oracle_scaling.json` (a `results` array plus a `summary` with the
//! acceptance ratios).

use std::fmt::Write as _;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use wsi_core::{
    CommitRequest, ConcurrentOracle, IsolationLevel, RowId, SharedTimestampSource, StatusOracleCore,
};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const SHARD_COUNTS: [usize; 3] = [1, 4, 16];
const KEYS_PER_THREAD: u64 = 64;
const HOT_ROWS: u64 = 64;

#[derive(Clone, Copy, PartialEq)]
enum Backend {
    Mutex,
    Sharded(usize),
}

impl Backend {
    fn name(self) -> String {
        match self {
            Backend::Mutex => "mutex".to_string(),
            Backend::Sharded(n) => format!("sharded-{n}"),
        }
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Contention {
    Low,
    High,
}

impl Contention {
    fn name(self) -> &'static str {
        match self {
            Contention::Low => "low",
            Contention::High => "high",
        }
    }
}

/// The two decision engines behind one dispatch, begins always via the
/// shared atomic counter (lock-free in both, as in the store). The serial
/// backend uses `parking_lot::Mutex` because that is exactly what the
/// pre-sharding store wrapped its oracle in (`OracleMode::Serial` still
/// does).
enum Oracle {
    Mutex(Mutex<StatusOracleCore>),
    Sharded(ConcurrentOracle),
}

impl Oracle {
    fn commit(&self, req: CommitRequest) -> bool {
        match self {
            Oracle::Mutex(m) => m.lock().commit(req).is_committed(),
            Oracle::Sharded(o) => o.commit(req).is_committed(),
        }
    }
}

struct Row {
    backend: Backend,
    contention: Contention,
    think_us: u64,
    threads: usize,
    decisions: u64,
    commits: u64,
    elapsed_us: u128,
    shard_contention: u64,
}

impl Row {
    fn throughput(&self) -> f64 {
        if self.elapsed_us == 0 {
            0.0
        } else {
            self.decisions as f64 / (self.elapsed_us as f64 / 1e6)
        }
    }
}

/// The §6.3 read-two-write-one row shape for op `i` of thread `t`.
fn rows_for(contention: Contention, t: usize, i: u64) -> (RowId, RowId) {
    match contention {
        Contention::Low => {
            let base = t as u64 * 1_000_000;
            (
                RowId(base + i % KEYS_PER_THREAD),
                RowId(base + (i + 1) % KEYS_PER_THREAD),
            )
        }
        Contention::High => (RowId(i % HOT_ROWS), RowId((i + 1) % HOT_ROWS)),
    }
}

fn bench_one(
    backend: Backend,
    contention: Contention,
    think_us: u64,
    threads: usize,
    ops_per_thread: u64,
) -> Row {
    let ts = Arc::new(SharedTimestampSource::new());
    let oracle = Arc::new(match backend {
        Backend::Mutex => Oracle::Mutex(Mutex::new(StatusOracleCore::unbounded_shared(
            IsolationLevel::WriteSnapshot,
            Arc::clone(&ts),
        ))),
        Backend::Sharded(shards) => Oracle::Sharded(
            ConcurrentOracle::unbounded(IsolationLevel::WriteSnapshot, shards, Arc::clone(&ts))
                .with_obs_enabled(false),
        ),
    });

    let started = Instant::now();
    let commits: u64 = thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let oracle = Arc::clone(&oracle);
                let ts = Arc::clone(&ts);
                s.spawn(move || {
                    let mut committed = 0u64;
                    for i in 0..ops_per_thread {
                        if think_us > 0 {
                            // Client think time: the oracle is idle from this
                            // client's perspective while other clients decide.
                            thread::sleep(Duration::from_micros(think_us));
                        }
                        let start_ts = ts.next();
                        let (r1, r2) = rows_for(contention, t, i);
                        let req = CommitRequest::new(start_ts, vec![r1, r2], vec![r1]);
                        if oracle.commit(req) {
                            committed += 1;
                        }
                    }
                    committed
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    let elapsed_us = started.elapsed().as_micros();

    let shard_contention = match oracle.as_ref() {
        Oracle::Mutex(_) => 0,
        Oracle::Sharded(o) => o.shard_obs().contention_total(),
    };
    Row {
        backend,
        contention,
        think_us,
        threads,
        decisions: threads as u64 * ops_per_thread,
        commits,
        elapsed_us,
        shard_contention,
    }
}

fn find_throughput(
    rows: &[Row],
    backend: Backend,
    contention: Contention,
    think_us: u64,
    threads: usize,
) -> f64 {
    rows.iter()
        .find(|r| {
            r.backend == backend
                && r.contention == contention
                && r.think_us == think_us
                && r.threads == threads
        })
        .map(Row::throughput)
        .unwrap_or(0.0)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let ops_per_thread: u64 = args
        .next()
        .map(|a| a.parse().expect("ops per thread must be a number"))
        .unwrap_or(3_000);
    let think_us: u64 = args
        .next()
        .map(|a| a.parse().expect("think time must be microseconds"))
        .unwrap_or(50);

    let backends: Vec<Backend> = std::iter::once(Backend::Mutex)
        .chain(SHARD_COUNTS.iter().map(|&n| Backend::Sharded(n)))
        .collect();

    println!(
        "# oracle scaling: {ops_per_thread} decisions/thread, think {think_us} µs, \
         WSI read-2-write-1"
    );
    println!(
        "{:>11} {:>10} {:>6} {:>7} {:>10} {:>10} {:>12} {:>10}",
        "backend", "contention", "think", "threads", "decisions", "commits", "tps", "shard_cont"
    );

    // Enumerate the cells, then run their repeats round-robin — every cell's
    // best-of-N samples spread across the whole bench run, so a transiently
    // slow stretch of wall-clock (scheduler interference, hypervisor steal on
    // small hosts) cannot systematically penalize one backend. Raw cells
    // finish in milliseconds, so they get 10× the ops and best-of-5;
    // think-time cells are sleep-dominated and already stable.
    struct Cell {
        backend: Backend,
        contention: Contention,
        think_us: u64,
        threads: usize,
        ops: u64,
        repeats: usize,
        best: Option<Row>,
    }
    let mut cells = Vec::new();
    for &backend in &backends {
        for contention in [Contention::Low, Contention::High] {
            for think in [0, think_us] {
                for threads in THREAD_COUNTS {
                    let (ops, repeats) = if think == 0 {
                        (ops_per_thread * 10, 5)
                    } else {
                        (ops_per_thread, 1)
                    };
                    cells.push(Cell {
                        backend,
                        contention,
                        think_us: think,
                        threads,
                        ops,
                        repeats,
                        best: None,
                    });
                }
            }
        }
    }
    let max_repeats = cells.iter().map(|c| c.repeats).max().unwrap_or(1);
    for round in 0..max_repeats {
        for cell in &mut cells {
            if round >= cell.repeats {
                continue;
            }
            let row = bench_one(
                cell.backend,
                cell.contention,
                cell.think_us,
                cell.threads,
                cell.ops,
            );
            if cell
                .best
                .as_ref()
                .is_none_or(|best| row.elapsed_us < best.elapsed_us)
            {
                cell.best = Some(row);
            }
        }
    }
    let rows: Vec<Row> = cells
        .into_iter()
        .map(|c| c.best.expect("every cell ran at least once"))
        .collect();
    for row in &rows {
        println!(
            "{:>11} {:>10} {:>6} {:>7} {:>10} {:>10} {:>12.0} {:>10}",
            row.backend.name(),
            row.contention.name(),
            row.think_us,
            row.threads,
            row.decisions,
            row.commits,
            row.throughput(),
            row.shard_contention,
        );
    }

    // Acceptance ratios. The scaling ratio uses the think-time regime: with
    // clients that do anything at all between commits, decision concurrency
    // shows up as throughput even on few-core hosts. The backend-parity
    // ratio uses the raw regime at one thread: pure fixed-cost comparison.
    let sharded_max = Backend::Sharded(*SHARD_COUNTS.last().unwrap());
    let speedup_8t = find_throughput(&rows, sharded_max, Contention::Low, think_us, 8)
        / find_throughput(&rows, sharded_max, Contention::Low, think_us, 1);
    let parity_1t = find_throughput(&rows, sharded_max, Contention::Low, 0, 1)
        / find_throughput(&rows, Backend::Mutex, Contention::Low, 0, 1);
    let mutex_8t = find_throughput(&rows, Backend::Mutex, Contention::Low, think_us, 8)
        / find_throughput(&rows, Backend::Mutex, Contention::Low, think_us, 1);
    println!(
        "\nlow-contention speedup 8t/1t ({} think {} µs): {:.2}x (mutex: {:.2}x)",
        sharded_max.name(),
        think_us,
        speedup_8t,
        mutex_8t
    );
    println!(
        "single-thread raw parity ({} / mutex): {:.3}",
        sharded_max.name(),
        parity_1t
    );

    let mut json = String::from("{\n  \"results\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"backend\": \"{}\", \"contention\": \"{}\", \"think_us\": {}, \
             \"threads\": {}, \"decisions\": {}, \"commits\": {}, \"elapsed_us\": {}, \
             \"throughput_tps\": {:.1}, \"shard_contention\": {}}}{}",
            row.backend.name(),
            row.contention.name(),
            row.think_us,
            row.threads,
            row.decisions,
            row.commits,
            row.elapsed_us,
            row.throughput(),
            row.shard_contention,
            if i + 1 == rows.len() { "\n" } else { ",\n" },
        );
    }
    let _ = write!(
        json,
        "  ],\n  \"summary\": {{\n    \"ops_per_thread\": {ops_per_thread},\n    \
         \"think_us\": {think_us},\n    \
         \"low_contention_speedup_8t_vs_1t\": {speedup_8t:.3},\n    \
         \"mutex_low_contention_speedup_8t_vs_1t\": {mutex_8t:.3},\n    \
         \"sharded_vs_mutex_1t_raw\": {parity_1t:.3}\n  }}\n}}\n"
    );
    let path = "BENCH_oracle_scaling.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("\n-> {path}"),
        Err(e) => eprintln!("warning: cannot write {path}: {e}"),
    }
}

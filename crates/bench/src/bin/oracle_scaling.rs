//! Commit-decision throughput of the status oracle: sharded vs. serialized,
//! across threads × shards × contention.
//!
//! ```text
//! cargo run -p wsi-bench --release --bin oracle_scaling
//! cargo run -p wsi-bench --release --bin oracle_scaling -- 4000 50
//! #                                       ops per thread ^    ^ think time (µs)
//! ```
//!
//! This measures the decision path in isolation — `begin` from the shared
//! atomic counter, then one WSI read-two-write-one commit decision per op —
//! with no version store or WAL in the way, so the numbers isolate exactly
//! the critical section this PR shards. Backends:
//!
//! * `mutex`      — the pre-sharding path: one `StatusOracleCore` behind one
//!   mutex, every decision serialized (the store's `OracleMode::Serial`).
//! * `sharded-N`  — `ConcurrentOracle` with N `lastCommit` shards.
//! * `batched-N`  — `BatchedOracle` with N hash partitions: requests claim
//!   lock-free ring slots and whole epochs decide at once, so the hot path
//!   costs one `fetch_add` plus two synchronization handoffs **per epoch**
//!   instead of at least one lock handoff per decision.
//!
//! Contention regimes:
//!
//! * `low`  — each thread owns a private 64-row range: decisions touch
//!   disjoint shards and should scale.
//! * `high` — all threads hammer the same 64 hot rows: decisions pile onto
//!   the same shards and mutual exclusion (plus conflict aborts) dominates.
//! * `zipf` — the hot-key regime the batched oracle is built for: WSI
//!   commit requests with **thirty-two** zipfian reads (YCSB θ = 0.99 over
//!   a 256-row space, the paper's §6.5 "some items are extremely popular"
//!   shape) plus one write, issued in **pipelined windows** of 32 requests
//!   per client — the deployment model where each connection keeps several
//!   commits in flight rather than blocking on each round trip. Row
//!   sequences are pre-generated from a fixed seed, identical for every
//!   backend; request buffers are pre-built outside the timed region and
//!   each window begins with one timestamp-block fetch, so the cells time
//!   decisions, not workload marshalling — identically for every backend.
//!   Wide read sets overflow the sharded backend's inline lock path (it
//!   must heap-collect, sort, dedup, and take a lock handshake per touched
//!   shard, per decision, *before* it can test the first row), and
//!   pipelined windows are what let epochs form: the batched backend
//!   drains a whole window through [`BatchedOracle::submit_pipelined`] as
//!   one epoch — one timestamp fetch and one publish for the lot — while
//!   the lock-based backends have no way to overlap decisions and pay the
//!   full per-decision cost once per window member. That asymmetry is the
//!   point being measured, not an unfairness: per-decision locking
//!   *cannot* exploit a client window, epoch scheduling can.
//!
//! The `low`/`high` regimes run twice: `raw` (think = 0, back-to-back
//! decisions — the honest single-thread comparison of the two backends'
//! fixed costs; these cells run 10× the ops and keep the best of five
//! repeats, since millisecond-scale cells are otherwise at the mercy of
//! the scheduler) and `think` (each op sleeps a client think time before
//! its decision, modelling the paper's deployment where the oracle serves
//! many concurrent clients over a network: the oracle is busy only a
//! fraction of each client's cycle, so overlapping clients expose how much
//! decision concurrency the backend admits — including on machines with
//! few cores, where sleeps overlap even though spins cannot). The `zipf`
//! regime runs raw only: its client-cycle model is the in-flight window
//! itself, not a sleep.
//!
//! A decision = one commit or one conflict abort. Results go to stdout and
//! `BENCH_oracle_scaling.json` (a `results` array plus a `summary` with the
//! acceptance ratios).

use std::fmt::Write as _;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use wsi_core::{
    BatchedOracle, CommitRequest, ConcurrentOracle, IsolationLevel, RowId, SharedTimestampSource,
    StatusOracleCore, Timestamp,
};
use wsi_sim::{SimRng, Zipfian};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const SHARD_COUNTS: [usize; 3] = [1, 4, 16];
const KEYS_PER_THREAD: u64 = 64;
const HOT_ROWS: u64 = 64;
const ZIPF_KEYS: u64 = 256;
const ZIPF_SEED: u64 = 0x5ca1_ab1e;
/// Reads per zipf request — wide enough that the sharded backend's inline
/// (stack-array) lock path spills to its heap path, as real WSI read sets
/// do.
const ZIPF_READS: usize = 32;
/// In-flight requests per client connection in the zipf regime.
const PIPELINE_WINDOW: usize = 32;

#[derive(Clone, Copy, PartialEq)]
enum Backend {
    Mutex,
    Sharded(usize),
    Batched(usize),
}

impl Backend {
    fn name(self) -> String {
        match self {
            Backend::Mutex => "mutex".to_string(),
            Backend::Sharded(n) => format!("sharded-{n}"),
            Backend::Batched(n) => format!("batched-{n}"),
        }
    }

    /// The `--backend` filter key: the family without the shard count.
    fn family(self) -> &'static str {
        match self {
            Backend::Mutex => "mutex",
            Backend::Sharded(_) => "sharded",
            Backend::Batched(_) => "batched",
        }
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Contention {
    Low,
    High,
    Zipf,
}

impl Contention {
    fn name(self) -> &'static str {
        match self {
            Contention::Low => "low",
            Contention::High => "high",
            Contention::Zipf => "zipf",
        }
    }
}

/// The three decision engines behind one dispatch, begins always via the
/// shared atomic counter (lock-free in all, as in the store). The serial
/// backend uses `parking_lot::Mutex` because that is exactly what the
/// pre-sharding store wrapped its oracle in (`OracleMode::Serial` still
/// does).
enum Oracle {
    Mutex(Mutex<StatusOracleCore>),
    Sharded(ConcurrentOracle),
    Batched(BatchedOracle),
}

impl Oracle {
    fn commit(&self, req: CommitRequest) -> bool {
        match self {
            Oracle::Mutex(m) => m.lock().commit(req).is_committed(),
            Oracle::Sharded(o) => o.commit(req).is_committed(),
            Oracle::Batched(o) => o.commit(req).is_committed(),
        }
    }

    /// Decides one client window, returning how many committed. The batched
    /// backend drains the whole window through the epoch ring before waiting
    /// on any outcome; per-decision locking has no equivalent — each request
    /// must finish before the next can start — so the others decide the same
    /// window sequentially.
    fn commit_window(&self, reqs: Vec<CommitRequest>) -> u64 {
        match self {
            Oracle::Batched(o) => o
                .commit_pipelined(reqs)
                .iter()
                .filter(|out| out.is_committed())
                .count() as u64,
            _ => reqs
                .into_iter()
                .map(|req| self.commit(req))
                .filter(|&committed| committed)
                .count() as u64,
        }
    }
}

struct Row {
    backend: Backend,
    contention: Contention,
    think_us: u64,
    threads: usize,
    decisions: u64,
    commits: u64,
    elapsed_us: u128,
    shard_contention: u64,
}

impl Row {
    fn throughput(&self) -> f64 {
        if self.elapsed_us == 0 {
            0.0
        } else {
            self.decisions as f64 / (self.elapsed_us as f64 / 1e6)
        }
    }
}

/// The §6.3 read-two-write-one row shape for op `i` of thread `t`.
fn rows_for(contention: Contention, t: usize, i: u64) -> (RowId, RowId) {
    match contention {
        Contention::Low => {
            let base = t as u64 * 1_000_000;
            (
                RowId(base + i % KEYS_PER_THREAD),
                RowId(base + (i + 1) % KEYS_PER_THREAD),
            )
        }
        Contention::High => (RowId(i % HOT_ROWS), RowId((i + 1) % HOT_ROWS)),
        Contention::Zipf => unreachable!("zipf rows are pre-generated"),
    }
}

/// Pre-generated zipfian read sets ([`ZIPF_READS`] rows each), one sequence
/// per thread, from a fixed seed — off the timed path and byte-identical
/// across backends, so the comparison measures the oracle, not the sampler.
fn zipf_rows(threads: usize, ops_per_thread: u64) -> Vec<Vec<Vec<RowId>>> {
    (0..threads)
        .map(|t| {
            let mut rng = SimRng::new(ZIPF_SEED).fork(t as u64);
            let mut zipf = Zipfian::new(ZIPF_KEYS);
            (0..ops_per_thread)
                .map(|_| {
                    (0..ZIPF_READS)
                        .map(|_| RowId(zipf.next(&mut rng)))
                        .collect()
                })
                .collect()
        })
        .collect()
}

fn bench_one(
    backend: Backend,
    contention: Contention,
    think_us: u64,
    threads: usize,
    ops_per_thread: u64,
) -> Row {
    let ts = Arc::new(SharedTimestampSource::new());
    let oracle = Arc::new(match backend {
        Backend::Mutex => Oracle::Mutex(Mutex::new(StatusOracleCore::unbounded_shared(
            IsolationLevel::WriteSnapshot,
            Arc::clone(&ts),
        ))),
        Backend::Sharded(shards) => Oracle::Sharded(
            ConcurrentOracle::unbounded(IsolationLevel::WriteSnapshot, shards, Arc::clone(&ts))
                .with_obs_enabled(false),
        ),
        Backend::Batched(partitions) => Oracle::Batched(
            BatchedOracle::unbounded(IsolationLevel::WriteSnapshot, partitions, Arc::clone(&ts))
                .with_obs_enabled(false),
        ),
    });
    let zipf = match contention {
        Contention::Zipf => zipf_rows(threads, ops_per_thread),
        _ => Vec::new(),
    };
    // Zipf request buffers are pre-built outside the timed region: row-vec
    // allocation and copying is workload generation, identical for every
    // backend, and would otherwise dilute the per-decision cost being
    // measured. Start timestamps are still issued inside the timed loop,
    // window by window, so the in-flight overlap profile (which commits
    // postdate which starts) is untouched.
    let mut prebuilt: Vec<Vec<Vec<CommitRequest>>> = zipf
        .iter()
        .map(|ops| {
            ops.chunks(PIPELINE_WINDOW)
                .map(|window| {
                    window
                        .iter()
                        .map(|reads| {
                            CommitRequest::new(Timestamp(0), reads.clone(), vec![reads[0]])
                        })
                        .collect()
                })
                .collect()
        })
        .collect();

    let started = Instant::now();
    let commits: u64 = thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let oracle = Arc::clone(&oracle);
                let ts = Arc::clone(&ts);
                let windows = std::mem::take(prebuilt.get_mut(t).unwrap_or(&mut Vec::new()));
                s.spawn(move || {
                    let mut committed = 0u64;
                    if contention == Contention::Zipf {
                        // Pipelined client: issue a whole window of starts,
                        // then decide the window. Starts are issued up front
                        // for every backend — that is what "in flight"
                        // means — so the conflict horizon (commits that
                        // postdate a request's start) is the same whether
                        // the window decides as one epoch or one at a time.
                        for mut reqs in windows {
                            // One counter round-trip begins the whole
                            // window, for every backend alike.
                            let mut start = ts.next_block(reqs.len() as u64);
                            for req in &mut reqs {
                                req.start_ts = start;
                                start = start.next();
                            }
                            committed += oracle.commit_window(reqs);
                        }
                        return committed;
                    }
                    for i in 0..ops_per_thread {
                        if think_us > 0 {
                            // Client think time: the oracle is idle from this
                            // client's perspective while other clients decide.
                            thread::sleep(Duration::from_micros(think_us));
                        }
                        let start_ts = ts.next();
                        let (r1, r2) = rows_for(contention, t, i);
                        let req = CommitRequest::new(start_ts, vec![r1, r2], vec![r1]);
                        if oracle.commit(req) {
                            committed += 1;
                        }
                    }
                    committed
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).sum()
    });
    let elapsed_us = started.elapsed().as_micros();

    let shard_contention = match oracle.as_ref() {
        Oracle::Mutex(_) | Oracle::Batched(_) => 0,
        Oracle::Sharded(o) => o.shard_obs().contention_total(),
    };
    Row {
        backend,
        contention,
        think_us,
        threads,
        decisions: threads as u64 * ops_per_thread,
        commits,
        elapsed_us,
        shard_contention,
    }
}

fn find_throughput(
    rows: &[Row],
    backend: Backend,
    contention: Contention,
    think_us: u64,
    threads: usize,
) -> f64 {
    rows.iter()
        .find(|r| {
            r.backend == backend
                && r.contention == contention
                && r.think_us == think_us
                && r.threads == threads
        })
        .map(Row::throughput)
        .unwrap_or(0.0)
}

fn main() {
    // Usage: oracle_scaling [ops_per_thread] [think_us] [--backend FAMILY]
    // `--backend mutex|sharded|batched` restricts the sweep to one family —
    // tier 1 uses it to smoke the batched path on its own; cross-backend
    // summary ratios need the full sweep and are skipped when filtering.
    let mut positional = Vec::new();
    let mut backend_filter: Option<String> = None;
    let mut raw = std::env::args().skip(1);
    while let Some(arg) = raw.next() {
        if arg == "--backend" {
            let family = raw
                .next()
                .expect("--backend takes a family: mutex|sharded|batched");
            assert!(
                matches!(family.as_str(), "mutex" | "sharded" | "batched"),
                "unknown backend family {family:?} (mutex|sharded|batched)"
            );
            backend_filter = Some(family);
        } else {
            positional.push(arg);
        }
    }
    let ops_per_thread: u64 = positional
        .first()
        .map(|a| a.parse().expect("ops per thread must be a number"))
        .unwrap_or(3_000);
    let think_us: u64 = positional
        .get(1)
        .map(|a| a.parse().expect("think time must be microseconds"))
        .unwrap_or(50);

    let backends: Vec<Backend> = std::iter::once(Backend::Mutex)
        .chain(SHARD_COUNTS.iter().map(|&n| Backend::Sharded(n)))
        .chain(SHARD_COUNTS.iter().map(|&n| Backend::Batched(n)))
        .filter(|b| {
            backend_filter
                .as_deref()
                .is_none_or(|family| b.family() == family)
        })
        .collect();

    println!(
        "# oracle scaling: {ops_per_thread} decisions/thread, think {think_us} µs, \
         WSI read-2-write-1 (zipf: read-{ZIPF_READS}-write-1, windows of {PIPELINE_WINDOW})"
    );
    println!(
        "{:>11} {:>10} {:>6} {:>7} {:>10} {:>10} {:>12} {:>10}",
        "backend", "contention", "think", "threads", "decisions", "commits", "tps", "shard_cont"
    );

    // Enumerate the cells, then run their repeats round-robin — every cell's
    // best-of-N samples spread across the whole bench run, so a transiently
    // slow stretch of wall-clock (scheduler interference, hypervisor steal on
    // small hosts) cannot systematically penalize one backend. Raw cells
    // finish in milliseconds, so they get 10× the ops and best-of-5;
    // think-time cells are sleep-dominated and already stable.
    struct Cell {
        backend: Backend,
        contention: Contention,
        think_us: u64,
        threads: usize,
        ops: u64,
        repeats: usize,
        best: Option<Row>,
    }
    let mut cells = Vec::new();
    for &backend in &backends {
        for contention in [Contention::Low, Contention::High, Contention::Zipf] {
            for think in [0, think_us] {
                if think > 0 && contention == Contention::Zipf {
                    // The zipf regime's client-cycle model is the pipelined
                    // window, not a sleep.
                    continue;
                }
                for threads in THREAD_COUNTS {
                    let (ops, repeats) = if think == 0 {
                        (ops_per_thread * 10, 5)
                    } else {
                        (ops_per_thread, 1)
                    };
                    cells.push(Cell {
                        backend,
                        contention,
                        think_us: think,
                        threads,
                        ops,
                        repeats,
                        best: None,
                    });
                }
            }
        }
    }
    let max_repeats = cells.iter().map(|c| c.repeats).max().unwrap_or(1);
    for round in 0..max_repeats {
        for cell in &mut cells {
            if round >= cell.repeats {
                continue;
            }
            let row = bench_one(
                cell.backend,
                cell.contention,
                cell.think_us,
                cell.threads,
                cell.ops,
            );
            if cell
                .best
                .as_ref()
                .is_none_or(|best| row.elapsed_us < best.elapsed_us)
            {
                cell.best = Some(row);
            }
        }
    }
    let rows: Vec<Row> = cells
        .into_iter()
        .map(|c| c.best.expect("every cell ran at least once"))
        .collect();
    for row in &rows {
        println!(
            "{:>11} {:>10} {:>6} {:>7} {:>10} {:>10} {:>12.0} {:>10}",
            row.backend.name(),
            row.contention.name(),
            row.think_us,
            row.threads,
            row.decisions,
            row.commits,
            row.throughput(),
            row.shard_contention,
        );
    }

    // Acceptance ratios. The scaling ratio uses the think-time regime: with
    // clients that do anything at all between commits, decision concurrency
    // shows up as throughput even on few-core hosts. The backend-parity
    // ratio uses the raw regime at one thread: pure fixed-cost comparison.
    // All of the ratios compare across backend families, so a `--backend`
    // filter leaves them meaningless — the summary is skipped entirely
    // rather than written as 0/0.
    let ratios = backend_filter.is_none().then(|| {
        let sharded_max = Backend::Sharded(*SHARD_COUNTS.last().unwrap());
        let batched_max = Backend::Batched(*SHARD_COUNTS.last().unwrap());
        let speedup_8t = find_throughput(&rows, sharded_max, Contention::Low, think_us, 8)
            / find_throughput(&rows, sharded_max, Contention::Low, think_us, 1);
        let parity_1t = find_throughput(&rows, sharded_max, Contention::Low, 0, 1)
            / find_throughput(&rows, Backend::Mutex, Contention::Low, 0, 1);
        let mutex_8t = find_throughput(&rows, Backend::Mutex, Contention::Low, think_us, 8)
            / find_throughput(&rows, Backend::Mutex, Contention::Low, think_us, 1);
        // The batched acceptance ratios. Hot-key uses the zipf regime at 8
        // threads: wide zipfian read sets in pipelined windows, where the
        // sharded backend pays a heap-collect + sort + multi-shard lock
        // handshake per decision, 16 times per window, and the batched backend
        // drains each window as a couple of zero-lock epochs. Parity uses the
        // raw regime at one thread over private 2-row requests submitted
        // synchronously: pure fixed-cost comparison of one epoch-of-one against
        // one inline lock round trip, with batching given nothing to amortize.
        let batched_8t_hot = find_throughput(&rows, batched_max, Contention::Zipf, 0, 8)
            / find_throughput(&rows, sharded_max, Contention::Zipf, 0, 8);
        let batched_8t_hot_uniform = find_throughput(&rows, batched_max, Contention::High, 0, 8)
            / find_throughput(&rows, sharded_max, Contention::High, 0, 8);
        let batched_1t_raw = find_throughput(&rows, batched_max, Contention::Low, 0, 1)
            / find_throughput(&rows, sharded_max, Contention::Low, 0, 1);
        println!(
            "\nlow-contention speedup 8t/1t ({} think {} µs): {:.2}x (mutex: {:.2}x)",
            sharded_max.name(),
            think_us,
            speedup_8t,
            mutex_8t
        );
        println!(
            "single-thread raw parity ({} / mutex): {:.3}",
            sharded_max.name(),
            parity_1t
        );
        println!(
            "hot-key raw 8t ({} / {}): {:.2}x zipf, {:.2}x uniform-hot",
            batched_max.name(),
            sharded_max.name(),
            batched_8t_hot,
            batched_8t_hot_uniform
        );
        println!(
            "single-thread raw parity ({} / {}): {:.3}",
            batched_max.name(),
            sharded_max.name(),
            batched_1t_raw
        );
        (
            speedup_8t,
            mutex_8t,
            parity_1t,
            batched_8t_hot,
            batched_8t_hot_uniform,
            batched_1t_raw,
        )
    });

    let mut json = String::from("{\n  \"results\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"backend\": \"{}\", \"contention\": \"{}\", \"think_us\": {}, \
             \"threads\": {}, \"decisions\": {}, \"commits\": {}, \"elapsed_us\": {}, \
             \"throughput_tps\": {:.1}, \"shard_contention\": {}}}{}",
            row.backend.name(),
            row.contention.name(),
            row.think_us,
            row.threads,
            row.decisions,
            row.commits,
            row.elapsed_us,
            row.throughput(),
            row.shard_contention,
            if i + 1 == rows.len() { "\n" } else { ",\n" },
        );
    }
    match ratios {
        Some((speedup_8t, mutex_8t, parity_1t, hot, hot_uniform, raw_1t)) => {
            let _ = write!(
                json,
                "  ],\n  \"summary\": {{\n    \"ops_per_thread\": {ops_per_thread},\n    \
                 \"think_us\": {think_us},\n    \
                 \"low_contention_speedup_8t_vs_1t\": {speedup_8t:.3},\n    \
                 \"mutex_low_contention_speedup_8t_vs_1t\": {mutex_8t:.3},\n    \
                 \"sharded_vs_mutex_1t_raw\": {parity_1t:.3},\n    \
                 \"batched_vs_sharded_8t_hot\": {hot:.3},\n    \
                 \"batched_vs_sharded_8t_uniform_hot\": {hot_uniform:.3},\n    \
                 \"batched_vs_sharded_1t_raw\": {raw_1t:.3}\n  }}\n}}\n"
            );
        }
        None => {
            let _ = write!(
                json,
                "  ],\n  \"summary\": {{\n    \"ops_per_thread\": {ops_per_thread},\n    \
                 \"think_us\": {think_us},\n    \
                 \"backend_filter\": \"{}\"\n  }}\n}}\n",
                backend_filter.as_deref().unwrap_or(""),
            );
        }
    }
    let path = "BENCH_oracle_scaling.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("\n-> {path}"),
        Err(e) => eprintln!("warning: cannot write {path}: {e}"),
    }
}

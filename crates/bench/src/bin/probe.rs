//! Calibration probe: prints full run diagnostics for a few configurations.
//!
//! Not part of the figure harness; useful when re-tuning the latency model.
//!
//! ```text
//! cargo run -p wsi-bench --release --bin probe -- <clients> <dist> <mix> [rows] [warm_s] [measure_s]
//! ```

use wsi_cluster::{ClusterConfig, Runner};
use wsi_core::IsolationLevel;
use wsi_sim::SimTime;
use wsi_workload::{KeyDistribution, Mix};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let clients: usize = args.first().and_then(|s| s.parse().ok()).unwrap_or(40);
    let dist = match args.get(1).map(String::as_str) {
        Some("zipf") => KeyDistribution::Zipfian,
        Some("latest") => KeyDistribution::ZipfianLatest,
        _ => KeyDistribution::Uniform,
    };
    let mix = match args.get(2).map(String::as_str) {
        Some("mixed") => Mix::Mixed,
        _ => Mix::Complex,
    };
    let rows: u64 = args
        .get(3)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000_000);
    let warm: u64 = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(40);
    let measure: u64 = args.get(5).and_then(|s| s.parse().ok()).unwrap_or(40);

    let mut cfg = ClusterConfig::hbase(IsolationLevel::WriteSnapshot, clients, dist, mix, 1);
    cfg.workload.rows = rows;
    cfg.warmup = SimTime::from_secs(warm);
    cfg.measure = SimTime::from_secs(measure);
    let r = Runner::new(cfg).run();
    println!(
        "clients={clients} dist={dist:?} mix={mix:?} rows={rows}\n  tps={:.1} latency={:.1}ms p99={:.1}ms abort={:.3}\n  cache_hit={:.3} oracle_cpu={:.3}\n  ops: start={:.2}ms read={:.2}ms write={:.2}ms commit={:.2}ms",
        r.tps,
        r.mean_latency_ms,
        r.p99_latency_ms,
        r.abort_rate,
        r.cache_hit_rate,
        r.oracle_cpu_utilization,
        r.ops.start_ms,
        r.ops.read_ms,
        r.ops.write_ms,
        r.ops.commit_ms
    );
}

//! Data-plane throughput of the embedded store: lock-free arena vs.
//! partitioned vs. single-lock layouts, across backend × threads ×
//! contention × read/write mix.
//!
//! ```text
//! cargo run -p wsi-bench --release --bin mvcc_scaling
//! cargo run -p wsi-bench --release --bin mvcc_scaling -- 1500 40
//! #                                     ops per thread ^    ^ think (µs)
//! ```
//!
//! Where `oracle_scaling` isolated the commit-*decision* path, this drives
//! the full embedded stack — `begin`/snapshot, version-store reads, commit
//! apply with eager stamping — so the store's synchronization sits exactly
//! where it sits in production. The oracle is the default sharded one in
//! every cell; only the store layout varies:
//!
//! * `store-1`  — the single-lock layout: every get, scan, apply, and GC
//!   funnels through one `RwLock` (the pre-sharding store).
//! * `store-N`  — the partitioned store with N region shards.
//! * `arena-flat` — the lock-free layout with adaptivity off: chunked
//!   version arena, CAS-published chain heads of single-version nodes,
//!   epoch-based reclamation; readers take no locks at all (the PR-5
//!   layout, kept measurable as the packed-node baseline).
//! * `arena`    — the adaptive lock-free layout (the default): hot chains
//!   migrate into packed multi-version nodes with in-node binary search,
//!   so a hot-key walk touches O(len/16) cache lines instead of O(len).
//!
//! Mixes (all WSI; writers don't read, so nothing ever conflict-aborts and
//! every cell measures pure data-plane cost):
//!
//! * `read-heavy`  — 9 in 10 ops take a snapshot and do 4 point reads; the
//!   10th commits a 64-key batch.
//! * `write-heavy` — every other op is the 64-key batch commit.
//!
//! Contention: `low` gives each thread a private 8 K key range (disjoint
//! shard traffic — the scaling case); `high` points every thread at the
//! same 2 K hot keys.
//!
//! Regimes, as in `oracle_scaling`: `raw` (back-to-back ops, best-of-N
//! round-robin repeats — the single-thread parity comparison) and `think`
//! (each op follows a client think-time sleep, modelling the paper's
//! deployment of many concurrent clients per region server; sleeps overlap,
//! so an 8-thread cell keeps ~8 requests in flight on any host).
//!
//! Acceptance ratios (the `summary` block): the headline pair for the
//! lock-free layout is measured in the **raw** regime, where the store is
//! actually the bottleneck on any host — arena vs `store-16` at 8
//! saturated threads (lock-free readers vs shard read-locks under
//! contention, the ≥1.3× bar) and at 1 thread (the fixed-cost parity bar,
//! ≥0.95). The think-time cells are reported for completeness but are
//! sleep-dominated: on a single-core host every layout meets the same
//! ~think-bound ceiling there (see EXPERIMENTS.md for the methodology
//! caveat). The sharded-vs-single-lock ratios from the PR-4 harness are
//! kept unchanged alongside.
//!
//! Alongside the main grid, a **chain-depth sweep** reruns the
//! high-contention read-heavy raw 8-thread cell over write-batch size
//! {16, 64} × inline-prune bound {8, 32} on `store-16`, `arena-flat`, and
//! `arena`: deeper chains (bigger batches, laxer pruning) are exactly
//! where packed nodes pay, and the sweep shows the adaptive layout's
//! advantage growing with chain depth while the flat arena's shrinks.
//!
//! Results go to stdout and `BENCH_mvcc_scaling.json` (a `results` array
//! plus a `summary` with the acceptance ratios and the sweep ratios).

use std::fmt::Write as _;
use std::thread;
use std::time::{Duration, Instant};

use wsi_core::IsolationLevel;
use wsi_store::{Db, DbOptions, StoreLayout};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const BACKENDS: [Backend; 5] = [
    Backend::Locked(1),
    Backend::Locked(4),
    Backend::Locked(16),
    Backend::ArenaFlat,
    Backend::Arena,
];
/// Private key range per thread under low contention.
const RANGE_PER_THREAD: u64 = 8 * 1024;
/// Shared hot range under high contention.
const HOT_RANGE: u64 = 2 * 1024;
/// Point reads per read op (one snapshot each op).
const READS_PER_OP: usize = 4;
/// Keys per write-batch commit in the main grid.
const WRITE_BATCH: u64 = 64;
/// Inline-prune chain bound in the main grid (the `DbOptions` default).
const PRUNE_DEFAULT: usize = 32;
/// Chain-depth sweep axes: write-batch size × inline-prune bound, on the
/// high-contention read-heavy raw 8-thread cell.
const SWEEP_BATCHES: [u64; 2] = [16, 64];
const SWEEP_PRUNES: [usize; 2] = [8, 32];
const SWEEP_BACKENDS: [Backend; 3] = [Backend::Locked(16), Backend::ArenaFlat, Backend::Arena];

#[derive(Clone, Copy, PartialEq)]
enum Backend {
    /// The locked layout with N region shards (`store_shards(N)`).
    Locked(usize),
    /// The lock-free chunked-arena layout with adaptivity off (flat
    /// single-version chains — the packed-node baseline).
    ArenaFlat,
    /// The adaptive lock-free layout: hot chains migrate into packed
    /// multi-version nodes (the default `StoreLayout::Arena`).
    Arena,
}

impl Backend {
    fn name(self) -> String {
        match self {
            Backend::Locked(n) => format!("store-{n}"),
            Backend::ArenaFlat => "arena-flat".into(),
            Backend::Arena => "arena".into(),
        }
    }

    fn options(self, prune_len: usize) -> DbOptions {
        let options = DbOptions::new(IsolationLevel::WriteSnapshot)
            .with_obs(false)
            .prune_chain_len(prune_len);
        match self {
            Backend::Locked(n) => options.store_shards(n),
            Backend::ArenaFlat => options
                .store_layout(StoreLayout::Arena)
                .arena_adaptive(false),
            Backend::Arena => options.store_layout(StoreLayout::Arena),
        }
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Contention {
    Low,
    High,
}

impl Contention {
    fn name(self) -> &'static str {
        match self {
            Contention::Low => "low",
            Contention::High => "high",
        }
    }

    fn range_of(self, t: usize) -> (u64, u64) {
        match self {
            Contention::Low => (t as u64 * RANGE_PER_THREAD, RANGE_PER_THREAD),
            Contention::High => (0, HOT_RANGE),
        }
    }

    fn keys_needed(self, threads: usize) -> u64 {
        match self {
            Contention::Low => threads as u64 * RANGE_PER_THREAD,
            Contention::High => HOT_RANGE,
        }
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Mix {
    ReadHeavy,
    WriteHeavy,
}

impl Mix {
    fn name(self) -> &'static str {
        match self {
            Mix::ReadHeavy => "read-heavy",
            Mix::WriteHeavy => "write-heavy",
        }
    }

    /// Every `write_every`-th op commits the write batch.
    fn write_every(self) -> u64 {
        match self {
            Mix::ReadHeavy => 10,
            Mix::WriteHeavy => 2,
        }
    }
}

fn key(n: u64) -> Vec<u8> {
    format!("k{n:08x}").into_bytes()
}

/// Full-period xorshift64*; the bench carries its own RNG so cells are
/// deterministic and dependency-free.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

struct Row {
    backend: Backend,
    contention: Contention,
    mix: Mix,
    think_us: u64,
    threads: usize,
    write_batch: u64,
    prune_len: usize,
    ops: u64,
    reads: u64,
    writes: u64,
    elapsed_us: u128,
}

impl Row {
    fn throughput(&self) -> f64 {
        if self.elapsed_us == 0 {
            0.0
        } else {
            self.ops as f64 / (self.elapsed_us as f64 / 1e6)
        }
    }
}

#[allow(clippy::too_many_arguments)] // one parameter per sweep axis
fn bench_one(
    backend: Backend,
    contention: Contention,
    mix: Mix,
    think_us: u64,
    threads: usize,
    ops_per_thread: u64,
    write_batch: u64,
    prune_len: usize,
) -> Row {
    let db = Db::open(backend.options(prune_len));
    // Pre-compute every key byte-string the cell can touch (so the timed
    // loops never pay `format!`), then pre-populate in chunked commits.
    let total_keys = contention.keys_needed(threads);
    let keys: Vec<Vec<u8>> = (0..total_keys).map(key).collect();
    let mut next = 0usize;
    while next < keys.len() {
        let mut txn = db.begin();
        for k in &keys[next..(next + 4096).min(keys.len())] {
            txn.put(k, b"initial-value");
        }
        txn.commit().expect("setup commit");
        next += 4096;
    }

    let keys = &keys;
    let started = Instant::now();
    let (reads, writes) = thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let db = db.clone();
                s.spawn(move || {
                    let (base, range) = contention.range_of(t);
                    let mut rng = 0x9E37_79B9u64 + t as u64 * 0x1234_5677 + 1;
                    let mut reads = 0u64;
                    let mut writes = 0u64;
                    for i in 0..ops_per_thread {
                        if think_us > 0 {
                            thread::sleep(Duration::from_micros(think_us));
                        }
                        if i % mix.write_every() == 0 {
                            // The apply path: one commit spreading a 64-key
                            // batch across the store (one write-lock hold on
                            // store-1; per-shard visits on store-N; CAS
                            // publishes on the arena).
                            let mut txn = db.begin();
                            for _ in 0..write_batch {
                                let n = base + xorshift(&mut rng) % range;
                                txn.put(&keys[n as usize], i.to_be_bytes().as_slice());
                            }
                            txn.commit().expect("writers never read: no conflicts");
                            writes += 1;
                        } else {
                            let snap = db.snapshot();
                            for _ in 0..READS_PER_OP {
                                let n = base + xorshift(&mut rng) % range;
                                std::hint::black_box(snap.get(&keys[n as usize]));
                            }
                            reads += 1;
                        }
                    }
                    (reads, writes)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .fold((0u64, 0u64), |(r, w), (hr, hw)| (r + hr, w + hw))
    });
    let elapsed_us = started.elapsed().as_micros();
    Row {
        backend,
        contention,
        mix,
        think_us,
        threads,
        write_batch,
        prune_len,
        ops: threads as u64 * ops_per_thread,
        reads,
        writes,
        elapsed_us,
    }
}

/// Main-grid lookup: fixed at the grid's write-batch size and prune bound
/// (the sweep rows carry other values and are matched separately).
fn find_throughput(
    rows: &[Row],
    backend: Backend,
    contention: Contention,
    mix: Mix,
    think_us: u64,
    threads: usize,
) -> f64 {
    rows.iter()
        .find(|r| {
            r.backend == backend
                && r.contention == contention
                && r.mix == mix
                && r.think_us == think_us
                && r.threads == threads
                && r.write_batch == WRITE_BATCH
                && r.prune_len == PRUNE_DEFAULT
        })
        .map(Row::throughput)
        .unwrap_or(0.0)
}

/// Sweep lookup: the high-contention read-heavy raw 8-thread cell at a
/// given write-batch size and prune bound.
fn find_sweep(rows: &[Row], backend: Backend, write_batch: u64, prune_len: usize) -> f64 {
    rows.iter()
        .find(|r| {
            r.backend == backend
                && r.contention == Contention::High
                && r.mix == Mix::ReadHeavy
                && r.think_us == 0
                && r.threads == 8
                && r.write_batch == write_batch
                && r.prune_len == prune_len
        })
        .map(Row::throughput)
        .unwrap_or(0.0)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let ops_per_thread: u64 = args
        .next()
        .map(|a| a.parse().expect("ops per thread must be a number"))
        .unwrap_or(1_500);
    let think_us: u64 = args
        .next()
        .map(|a| a.parse().expect("think time must be microseconds"))
        .unwrap_or(40);

    println!(
        "# mvcc scaling: {ops_per_thread} ops/thread, think {think_us} µs, WSI, \
         {READS_PER_OP} reads/op, {WRITE_BATCH}-key write batches"
    );
    println!(
        "{:>10} {:>10} {:>12} {:>6} {:>7} {:>6} {:>6} {:>8} {:>8} {:>8} {:>12}",
        "backend",
        "contention",
        "mix",
        "think",
        "threads",
        "wb",
        "prune",
        "ops",
        "reads",
        "writes",
        "tps"
    );

    // Cells run round-robin (as in oracle_scaling): repeats of every cell
    // interleave across the whole run so a slow stretch of wall-clock can't
    // systematically penalize one backend. Raw cells are millisecond-scale,
    // so they get extra ops and best-of-5; think cells are sleep-dominated
    // and get best-of-2.
    struct Cell {
        backend: Backend,
        contention: Contention,
        mix: Mix,
        think_us: u64,
        threads: usize,
        write_batch: u64,
        prune_len: usize,
        ops: u64,
        repeats: usize,
        best: Option<Row>,
    }
    let mut cells = Vec::new();
    for &backend in &BACKENDS {
        for contention in [Contention::Low, Contention::High] {
            for mix in [Mix::ReadHeavy, Mix::WriteHeavy] {
                for think in [0, think_us] {
                    for threads in THREAD_COUNTS {
                        // Raw cells are tens-of-milliseconds scale, so a
                        // single hypervisor-steal window can swallow a
                        // whole repeat; best-of-5 (vs best-of-2 for the
                        // sleep-dominated think cells) gives each raw
                        // cell a realistic shot at a clean window. The
                        // acceptance ratios all come from raw cells.
                        let (ops, repeats) = if think == 0 {
                            (ops_per_thread * 2, 5)
                        } else {
                            (ops_per_thread, 2)
                        };
                        cells.push(Cell {
                            backend,
                            contention,
                            mix,
                            think_us: think,
                            threads,
                            write_batch: WRITE_BATCH,
                            prune_len: PRUNE_DEFAULT,
                            ops,
                            repeats,
                            best: None,
                        });
                    }
                }
            }
        }
    }
    // Chain-depth sweep: the high-contention read-heavy raw 8-thread cell
    // over write-batch × prune-bound. The (WRITE_BATCH, PRUNE_DEFAULT)
    // corner is already in the main grid, so only the other corners run.
    for &backend in &SWEEP_BACKENDS {
        for write_batch in SWEEP_BATCHES {
            for prune_len in SWEEP_PRUNES {
                if write_batch == WRITE_BATCH && prune_len == PRUNE_DEFAULT {
                    continue;
                }
                cells.push(Cell {
                    backend,
                    contention: Contention::High,
                    mix: Mix::ReadHeavy,
                    think_us: 0,
                    threads: 8,
                    write_batch,
                    prune_len,
                    ops: ops_per_thread * 2,
                    repeats: 5,
                    best: None,
                });
            }
        }
    }
    let max_repeats = cells.iter().map(|c| c.repeats).max().unwrap_or(1);
    for round in 0..max_repeats {
        for cell in &mut cells {
            if round >= cell.repeats {
                continue;
            }
            let row = bench_one(
                cell.backend,
                cell.contention,
                cell.mix,
                cell.think_us,
                cell.threads,
                cell.ops,
                cell.write_batch,
                cell.prune_len,
            );
            if cell
                .best
                .as_ref()
                .is_none_or(|best| row.elapsed_us < best.elapsed_us)
            {
                cell.best = Some(row);
            }
        }
    }
    let rows: Vec<Row> = cells
        .into_iter()
        .map(|c| c.best.expect("every cell ran at least once"))
        .collect();
    for row in &rows {
        println!(
            "{:>10} {:>10} {:>12} {:>6} {:>7} {:>6} {:>6} {:>8} {:>8} {:>8} {:>12.0}",
            row.backend.name(),
            row.contention.name(),
            row.mix.name(),
            row.think_us,
            row.threads,
            row.write_batch,
            row.prune_len,
            row.ops,
            row.reads,
            row.writes,
            row.throughput(),
        );
    }

    // Acceptance ratios, all from the read-heavy low-contention column.
    //
    // * The arena pair uses the **raw** regime, where the store (not the
    //   client sleep) is the bottleneck on any host: at 8 saturated threads
    //   lock-free chain walks vs shard read-locks (the ≥1.3× bar), and at 1
    //   thread the fixed-cost parity bar (≥0.95 — arena allocation, hashing,
    //   and epoch pins must cost ~nothing over the locked fast path).
    // * The sharded-vs-single-lock ratios keep the PR-4 shape: the headline
    //   is think-regime 8 overlapped clients vs the serial single-lock
    //   baseline; the same-thread-count ratio is reported for honesty (≈1.0
    //   on single-core hosts where every layout is CPU-ceiling-bound); the
    //   parity bar (≥0.90) is raw single-thread.
    let locked_1 = Backend::Locked(1);
    let locked_max = *BACKENDS
        .iter()
        .rfind(|b| matches!(b, Backend::Locked(_)))
        .unwrap();
    let max_shards = match locked_max {
        Backend::Locked(n) => n,
        Backend::ArenaFlat | Backend::Arena => unreachable!(),
    };
    let arena_raw_8t =
        find_throughput(&rows, Backend::Arena, Contention::Low, Mix::ReadHeavy, 0, 8)
            / find_throughput(&rows, locked_max, Contention::Low, Mix::ReadHeavy, 0, 8);
    let arena_raw_1t =
        find_throughput(&rows, Backend::Arena, Contention::Low, Mix::ReadHeavy, 0, 1)
            / find_throughput(&rows, locked_max, Contention::Low, Mix::ReadHeavy, 0, 1);
    let arena_raw_high_8t =
        find_throughput(
            &rows,
            Backend::Arena,
            Contention::High,
            Mix::ReadHeavy,
            0,
            8,
        ) / find_throughput(&rows, locked_max, Contention::High, Mix::ReadHeavy, 0, 8);
    let arena_write_raw_8t =
        find_throughput(
            &rows,
            Backend::Arena,
            Contention::Low,
            Mix::WriteHeavy,
            0,
            8,
        ) / find_throughput(&rows, locked_max, Contention::Low, Mix::WriteHeavy, 0, 8);
    let sharded_8t_vs_single_1t = find_throughput(
        &rows,
        locked_max,
        Contention::Low,
        Mix::ReadHeavy,
        think_us,
        8,
    ) / find_throughput(
        &rows,
        locked_1,
        Contention::Low,
        Mix::ReadHeavy,
        think_us,
        1,
    );
    let same_threads_8t = find_throughput(
        &rows,
        locked_max,
        Contention::Low,
        Mix::ReadHeavy,
        think_us,
        8,
    ) / find_throughput(
        &rows,
        locked_1,
        Contention::Low,
        Mix::ReadHeavy,
        think_us,
        8,
    );
    let parity_1t = find_throughput(&rows, locked_max, Contention::Low, Mix::ReadHeavy, 0, 1)
        / find_throughput(&rows, locked_1, Contention::Low, Mix::ReadHeavy, 0, 1);
    let scaling_8t = find_throughput(
        &rows,
        locked_max,
        Contention::Low,
        Mix::ReadHeavy,
        think_us,
        8,
    ) / find_throughput(
        &rows,
        locked_max,
        Contention::Low,
        Mix::ReadHeavy,
        think_us,
        1,
    );
    let write_heavy_8t = find_throughput(
        &rows,
        locked_max,
        Contention::Low,
        Mix::WriteHeavy,
        think_us,
        8,
    ) / find_throughput(
        &rows,
        locked_1,
        Contention::Low,
        Mix::WriteHeavy,
        think_us,
        8,
    );
    let arena_vs_flat_high_8t = find_throughput(
        &rows,
        Backend::Arena,
        Contention::High,
        Mix::ReadHeavy,
        0,
        8,
    ) / find_throughput(
        &rows,
        Backend::ArenaFlat,
        Contention::High,
        Mix::ReadHeavy,
        0,
        8,
    );
    println!(
        "\narena vs store-{max_shards}, read-heavy low-contention raw 8t: {arena_raw_8t:.2}x \
         (acceptance bar: ≥1.30)"
    );
    println!(
        "arena vs store-{max_shards}, read-heavy low-contention raw 1t parity: \
         {arena_raw_1t:.3} (acceptance bar: ≥0.95)"
    );
    println!(
        "arena vs store-{max_shards}, read-heavy high-contention raw 8t: \
         {arena_raw_high_8t:.2}x (acceptance bar: ≥0.95 — packed nodes close the hot-key gap)"
    );
    println!(
        "arena vs arena-flat, read-heavy high-contention raw 8t: {arena_vs_flat_high_8t:.2}x \
         (the packed-node win in isolation)"
    );
    println!(
        "arena vs store-{max_shards}, write-heavy low-contention raw 8t: {arena_write_raw_8t:.2}x"
    );
    println!("\nchain-depth sweep (read-heavy high-contention raw 8t):");
    let mut sweep_json = String::new();
    for write_batch in SWEEP_BATCHES {
        for prune_len in SWEEP_PRUNES {
            let locked = find_sweep(&rows, locked_max, write_batch, prune_len);
            let flat = find_sweep(&rows, Backend::ArenaFlat, write_batch, prune_len);
            let adaptive = find_sweep(&rows, Backend::Arena, write_batch, prune_len);
            let vs_locked = adaptive / locked;
            let vs_flat = adaptive / flat;
            println!(
                "  wb={write_batch:>2} prune={prune_len:>2}: arena/store-{max_shards} \
                 {vs_locked:.2}x, arena/arena-flat {vs_flat:.2}x"
            );
            let _ = write!(
                sweep_json,
                ",\n    \"sweep_wb{write_batch}_prune{prune_len}_arena_vs_locked{max_shards}\": \
                 {vs_locked:.3},\n    \
                 \"sweep_wb{write_batch}_prune{prune_len}_arena_vs_flat\": {vs_flat:.3}"
            );
        }
    }
    println!(
        "read-heavy low-contention: store-{max_shards} at 8 clients vs single-lock serial \
         baseline (think {think_us} µs): {sharded_8t_vs_single_1t:.2}x"
    );
    println!(
        "read-heavy low-contention 8t same-thread-count, store-{max_shards} vs store-1: \
         {same_threads_8t:.2}x (≈1.0 on single-core hosts: CPU-ceiling-bound)"
    );
    println!("write-heavy low-contention 8t same-thread-count: {write_heavy_8t:.2}x");
    println!("store-{max_shards} read-heavy 8t/1t scaling (think): {scaling_8t:.2}x");
    println!("single-thread raw parity (store-{max_shards} / store-1): {parity_1t:.3}");

    let mut json = String::from("{\n  \"results\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"backend\": \"{}\", \"contention\": \"{}\", \"mix\": \"{}\", \
             \"think_us\": {}, \"threads\": {}, \"write_batch\": {}, \"prune_len\": {}, \
             \"ops\": {}, \"reads\": {}, \"writes\": {}, \
             \"elapsed_us\": {}, \"throughput_tps\": {:.1}}}{}",
            row.backend.name(),
            row.contention.name(),
            row.mix.name(),
            row.think_us,
            row.threads,
            row.write_batch,
            row.prune_len,
            row.ops,
            row.reads,
            row.writes,
            row.elapsed_us,
            row.throughput(),
            if i + 1 == rows.len() { "\n" } else { ",\n" },
        );
    }
    let _ = write!(
        json,
        "  ],\n  \"summary\": {{\n    \"ops_per_thread\": {ops_per_thread},\n    \
         \"think_us\": {think_us},\n    \
         \"read_heavy_low_raw_8t_arena_vs_locked{max_shards}\": {arena_raw_8t:.3},\n    \
         \"read_heavy_low_raw_1t_arena_vs_locked{max_shards}\": {arena_raw_1t:.3},\n    \
         \"read_heavy_high_raw_8t_arena_vs_locked{max_shards}\": {arena_raw_high_8t:.3},\n    \
         \"read_heavy_high_raw_8t_arena_vs_flat\": {arena_vs_flat_high_8t:.3},\n    \
         \"write_heavy_low_raw_8t_arena_vs_locked{max_shards}\": {arena_write_raw_8t:.3},\n    \
         \"read_heavy_low_sharded_8t_vs_single_lock_1t\": {sharded_8t_vs_single_1t:.3},\n    \
         \"read_heavy_low_8t_same_threads_sharded_vs_single_lock\": {same_threads_8t:.3},\n    \
         \"write_heavy_low_8t_same_threads_sharded_vs_single_lock\": {write_heavy_8t:.3},\n    \
         \"read_heavy_low_8t_vs_1t_sharded\": {scaling_8t:.3},\n    \
         \"single_thread_raw_parity\": {parity_1t:.3}{sweep_json}\n  }}\n}}\n"
    );
    let path = "BENCH_mvcc_scaling.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("\n-> {path}"),
        Err(e) => eprintln!("warning: cannot write {path}: {e}"),
    }

    // Acceptance gate: a full-scale run (the default arguments, the one that
    // refreshes the committed artifact) must clear every arena bar, or exit
    // nonzero so a regressed artifact can't be committed silently. Reduced
    // runs (tier1/bench_smoke scratch smokes pass explicit small op counts)
    // are liveness checks, not measurements, and skip the gate.
    if ops_per_thread >= 1500 {
        let bars = [
            (
                "read_heavy_low_raw_8t_arena_vs_locked16",
                arena_raw_8t,
                1.30,
            ),
            (
                "read_heavy_low_raw_1t_arena_vs_locked16",
                arena_raw_1t,
                0.95,
            ),
            (
                "read_heavy_high_raw_8t_arena_vs_locked16",
                arena_raw_high_8t,
                0.95,
            ),
        ];
        let failed: Vec<String> = bars
            .iter()
            .filter(|(_, v, bar)| v < bar)
            .map(|(name, v, bar)| format!("{name} = {v:.3} (bar ≥{bar})"))
            .collect();
        if !failed.is_empty() {
            eprintln!(
                "\nacceptance FAILED: {} — likely host noise at this cell \
                 scale; rerun on a quiet host before committing the artifact",
                failed.join(", ")
            );
            std::process::exit(1);
        }
    }
}

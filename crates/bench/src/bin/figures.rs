//! Regenerates every table and figure of the paper's evaluation (§6).
//!
//! ```text
//! cargo run -p wsi-bench --release --bin figures            # everything
//! cargo run -p wsi-bench --release --bin figures -- fig5    # one experiment
//! ```
//!
//! Prints each figure's data series (one row per measured point) together
//! with the paper's reference numbers, and writes CSV files under
//! `results/`.

use std::fs;
use std::io::Write as _;

use wsi_bench::{render_refs, render_series, PaperRef};
use wsi_cluster::experiments;
use wsi_sim::metrics::Series;

const SEED: u64 = 20120410; // EuroSys'12, April 10

fn write_csv(name: &str, series: &[Series]) {
    let _ = fs::create_dir_all("results");
    let path = format!("results/{name}.csv");
    let mut body = String::from("label,load,tps,latency_ms,abort_rate\n");
    for s in series {
        body.push_str(&s.to_csv());
    }
    if let Err(e) = fs::write(&path, body) {
        eprintln!("warning: cannot write {path}: {e}");
    } else {
        println!("  -> {path}");
    }
}

fn peak(series: &[Series], label: &str) -> f64 {
    series
        .iter()
        .find(|s| s.label == label)
        .map(Series::peak_tps)
        .unwrap_or(0.0)
}

fn max_abort(series: &[Series], label: &str) -> f64 {
    series
        .iter()
        .find(|s| s.label == label)
        .map(|s| s.points.iter().map(|p| p.abort_rate).fold(0.0, f64::max))
        .unwrap_or(0.0)
}

fn m1() {
    println!("# M1 (§6.2): per-operation latency breakdown");
    let ops = experiments::microbench(SEED);
    let refs = [
        PaperRef {
            what: "start-timestamp request (ms)",
            paper: 0.17,
            measured: ops.start_ms,
        },
        PaperRef {
            what: "random read (ms)",
            paper: 38.8,
            measured: ops.read_ms,
        },
        PaperRef {
            what: "write (ms)",
            paper: 1.13,
            measured: ops.write_ms,
        },
        PaperRef {
            what: "commit request (ms)",
            paper: 4.1,
            measured: ops.commit_ms,
        },
    ];
    print!("{}", render_refs(&refs));
    println!();
}

fn fig5() {
    println!(
        "# Figure 5: overhead on the status oracle (complex workload, 100 outstanding txns/client)"
    );
    let series = experiments::fig5(SEED);
    print!("{}", render_series("latency vs throughput", &series));
    let refs = [
        PaperRef {
            what: "WSI saturated TPS",
            paper: 92_000.0,
            measured: peak(&series, "wsi"),
        },
        PaperRef {
            what: "SI saturated TPS",
            paper: 104_000.0,
            measured: peak(&series, "si"),
        },
    ];
    print!("{}", render_refs(&refs));
    write_csv("fig5", &series);
    println!();
}

fn fig6() {
    println!("# Figure 6: performance with uniform distribution (complex workload)");
    let series = experiments::fig6(SEED);
    print!("{}", render_series("latency vs throughput", &series));
    let refs = [PaperRef {
        what: "WSI saturated TPS",
        paper: 391.0,
        measured: peak(&series, "wsi"),
    }];
    print!("{}", render_refs(&refs));
    write_csv("fig6", &series);
    println!();
}

fn fig7_8() {
    println!(
        "# Figures 7 & 8: performance and abort rate with zipfian distribution (mixed workload)"
    );
    let series = experiments::fig7_fig8(SEED);
    print!("{}", render_series("latency/abort vs throughput", &series));
    let refs = [
        PaperRef {
            what: "WSI saturated TPS (Fig. 7)",
            paper: 461.0,
            measured: peak(&series, "wsi"),
        },
        PaperRef {
            what: "WSI max abort rate (Fig. 8)",
            paper: 0.20,
            measured: max_abort(&series, "wsi"),
        },
        PaperRef {
            what: "SI max abort rate (Fig. 8)",
            paper: 0.19,
            measured: max_abort(&series, "si"),
        },
    ];
    print!("{}", render_refs(&refs));
    write_csv("fig7_fig8", &series);
    println!();
}

fn fig9_10() {
    println!("# Figures 9 & 10: performance and abort rate with zipfianLatest (mixed workload)");
    let series = experiments::fig9_fig10(SEED);
    print!("{}", render_series("latency/abort vs throughput", &series));
    let refs = [
        PaperRef {
            what: "WSI saturated TPS (Fig. 9)",
            paper: 361.0,
            measured: peak(&series, "wsi"),
        },
        PaperRef {
            what: "WSI max abort rate (Fig. 10)",
            paper: 0.21,
            measured: max_abort(&series, "wsi"),
        },
        PaperRef {
            what: "SI max abort rate (Fig. 10)",
            paper: 0.19,
            measured: max_abort(&series, "si"),
        },
    ];
    print!("{}", render_refs(&refs));
    write_csv("fig9_fig10", &series);
    println!();
}

fn ablations() {
    println!("# Ablation A1: Algorithm 3 memory bound (abort rate vs lastCommit capacity NR)");
    let series = experiments::ablation_nr(SEED);
    print!("{}", render_series("NR sweep (load column = NR)", &series));
    write_csv("ablation_nr", &series);
    println!();

    println!("# Ablation A2: region routing under zipfianLatest (sequential-key hotspot)");
    let series = experiments::ablation_routing(SEED);
    print!(
        "{}",
        render_series("hashed vs range-partitioned keys", &series)
    );
    write_csv("ablation_routing", &series);
    println!();

    println!("# Ablation A4: commit-timestamp deployment (§2.2) — replica vs query vs write-back");
    println!(
        "{:<16} {:>8} {:>10} {:>12} {:>12}",
        "mode", "clients", "tps", "latency_ms", "oracle_cpu"
    );
    for p in experiments::ablation_commit_info(SEED) {
        println!(
            "{:<16} {:>8} {:>10.1} {:>12.2} {:>12.4}",
            p.mode, p.clients, p.tps, p.latency_ms, p.oracle_cpu
        );
    }
    println!();

    println!("# Ablation A3: analytical read sets (§5.2) — enumerated vs compact ranges");
    println!(
        "{:<12} {:>20} {:>18} {:>20} {:>14}",
        "scan_width", "enumerated_abort", "range_abort", "enumerated_entries", "range_entries"
    );
    for p in experiments::analytical_read_sets(SEED) {
        println!(
            "{:<12} {:>20.3} {:>18.3} {:>20} {:>14}",
            p.scan_width,
            p.enumerated_abort_rate,
            p.range_abort_rate,
            p.enumerated_entries,
            p.range_entries
        );
    }
    println!();
}

/// Extension experiment: SI vs WSI vs Cahill-style SSI on identical
/// schedules — abort rates and serializability, oracle-level.
fn ssi_comparison() {
    use wsi_core::ssi::SsiOracle;
    use wsi_core::{CommitRequest, IsolationLevel, RowId, StatusOracleCore, Timestamp};
    use wsi_history::{dsg, History, Op, TxnId};
    use wsi_sim::{SimRng, Zipfian};

    const TXNS: usize = 20_000;
    const OVERLAP: usize = 8; // concurrent lifetimes
    const ROWS: u64 = 10_000;

    println!("# Extension E1: SI vs WSI vs SSI (§7.1) on identical zipfian schedules");
    println!(
        "{:<6} {:>10} {:>12} {:>14} {:>22}",
        "level", "commits", "aborts", "abort_rate", "serializable?"
    );

    // Pre-generate the schedule so every level sees identical requests.
    let mut rng = SimRng::new(SEED);
    let mut zipf = Zipfian::new(ROWS);
    let schedule: Vec<(Vec<u64>, Vec<u64>)> = (0..TXNS)
        .map(|_| {
            let n = rng.between(0, 10);
            let mut reads = Vec::new();
            let mut writes = Vec::new();
            for _ in 0..n {
                let row = zipf.next(&mut rng);
                if rng.chance(0.5) {
                    if !writes.contains(&row) {
                        writes.push(row);
                    }
                } else if !reads.contains(&row) {
                    reads.push(row);
                }
            }
            (reads, writes)
        })
        .collect();

    enum AnyOracle {
        Core(StatusOracleCore),
        Ssi(SsiOracle),
    }
    impl AnyOracle {
        fn begin(&mut self) -> Timestamp {
            match self {
                AnyOracle::Core(o) => o.begin(),
                AnyOracle::Ssi(o) => o.begin(),
            }
        }
        fn commit(&mut self, req: CommitRequest) -> wsi_core::CommitOutcome {
            match self {
                AnyOracle::Core(o) => o.commit(req),
                AnyOracle::Ssi(o) => o.commit(req),
            }
        }
    }

    for (name, mut oracle) in [
        (
            "si",
            AnyOracle::Core(StatusOracleCore::unbounded(IsolationLevel::Snapshot)),
        ),
        (
            "wsi",
            AnyOracle::Core(StatusOracleCore::unbounded(IsolationLevel::WriteSnapshot)),
        ),
        ("ssi", AnyOracle::Ssi(SsiOracle::new())),
    ] {
        let mut commits = 0u64;
        let mut aborts = 0u64;
        let mut ops: Vec<Op> = Vec::new();
        let mut pending: Vec<(Timestamp, usize)> = Vec::new();
        for (i, (reads, _)) in schedule.iter().enumerate() {
            let ts = oracle.begin();
            // Record reads at begin time: the snapshot is taken here, and
            // the recorded history must reflect the real concurrency.
            let txn = TxnId(i as u32 + 1);
            for &r in reads {
                ops.push(Op::Read(txn, r.to_string()));
            }
            pending.push((ts, i));
            if pending.len() >= OVERLAP || i == schedule.len() - 1 {
                for (ts, idx) in pending.drain(..) {
                    let (reads, writes) = &schedule[idx];
                    let txn = TxnId(idx as u32 + 1);
                    for &w in writes {
                        ops.push(Op::Write(txn, w.to_string()));
                    }
                    let outcome = oracle.commit(CommitRequest::new(
                        ts,
                        reads.iter().map(|&r| RowId(r)).collect(),
                        writes.iter().map(|&r| RowId(r)).collect(),
                    ));
                    if outcome.is_committed() {
                        commits += 1;
                        ops.push(Op::Commit(txn));
                    } else {
                        aborts += 1;
                        ops.push(Op::Abort(txn));
                    }
                }
            }
        }
        // Serializability ground truth on a sampled prefix (the DSG check
        // is quadratic in committed transactions, so keep it to a few
        // hundred transactions).
        let sample = History::new(ops.into_iter().take(2_000).collect());
        let serializable = dsg::is_serializable(&sample);
        println!(
            "{:<6} {:>10} {:>12} {:>14.4} {:>22}",
            name,
            commits,
            aborts,
            aborts as f64 / (commits + aborts) as f64,
            if serializable {
                "yes"
            } else {
                "NO (anomalies)"
            }
        );
    }
    println!("\nSSI admits more serializable histories than WSI (no single-edge aborts)");
    println!("but keeps whole read/write sets of recent transactions resident and");
    println!("double-checks both edge directions per commit; WSI needs one probe per");
    println!("read row against lastCommit (§7.1 trade-off).");
    println!();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let wanted = |name: &str| args.is_empty() || args.iter().any(|a| a == name);
    let started = std::time::Instant::now();

    if wanted("m1") {
        m1();
    }
    if wanted("fig5") {
        fig5();
    }
    if wanted("fig6") {
        fig6();
    }
    if wanted("fig7") || wanted("fig8") {
        fig7_8();
    }
    if wanted("fig9") || wanted("fig10") {
        fig9_10();
    }
    if wanted("ablations") {
        ablations();
    }
    if wanted("ssi") {
        ssi_comparison();
    }

    println!("done in {:.1}s", started.elapsed().as_secs_f64());
    let _ = std::io::stdout().flush();
}

//! Multi-threaded throughput of the embedded store across thread counts,
//! isolation levels, and durability modes.
//!
//! ```text
//! cargo run -p wsi-bench --release --bin store_concurrency
//! cargo run -p wsi-bench --release --bin store_concurrency -- 5000 200
//! #                                            ops per thread ^    ^ WAL flush delay (µs)
//! ```
//!
//! Each configuration runs `threads` workers, every worker performing
//! read-modify-write transactions over its own key range (no conflicts:
//! the numbers measure the commit path, not abort/retry behaviour). The
//! optional simulated flush delay models a replication round-trip, which is
//! what makes group-commit batching visible in the `Sync` rows: throughput
//! should fall far less than the per-commit delay would predict, and the
//! WAL batch factor should grow with the thread count.
//!
//! Results go to stdout as a table and to `BENCH_store_concurrency.json`.

use std::fmt::Write as _;
use std::thread;
use std::time::Instant;

use wsi_core::IsolationLevel;
use wsi_store::{Db, DbOptions, Durability};
use wsi_wal::LedgerConfig;

const THREAD_COUNTS: [usize; 5] = [1, 2, 4, 8, 16];
const KEYS_PER_THREAD: usize = 64;

struct Row {
    threads: usize,
    isolation: IsolationLevel,
    durability: Durability,
    commits: u64,
    elapsed_us: u128,
    wal_records: u64,
    wal_flushes: u64,
    batch_factor: f64,
}

impl Row {
    fn throughput_tps(&self) -> f64 {
        if self.elapsed_us == 0 {
            0.0
        } else {
            self.commits as f64 / (self.elapsed_us as f64 / 1e6)
        }
    }
}

fn iso_name(isolation: IsolationLevel) -> &'static str {
    match isolation {
        IsolationLevel::Snapshot => "si",
        IsolationLevel::WriteSnapshot => "wsi",
    }
}

fn dur_name(durability: Durability) -> &'static str {
    match durability {
        Durability::None => "none",
        Durability::Batched => "batched",
        Durability::Sync => "sync",
    }
}

fn bench_one(
    threads: usize,
    isolation: IsolationLevel,
    durability: Durability,
    ops_per_thread: usize,
    flush_delay_us: u64,
) -> Row {
    let wal = LedgerConfig::default_replicated().with_flush_delay_us(flush_delay_us);
    let mut options = DbOptions::new(isolation);
    match durability {
        Durability::None => {}
        Durability::Batched => options = options.durable_batched(wal),
        Durability::Sync => options = options.durable(wal),
    }
    let db = Db::open(options);

    let started = Instant::now();
    thread::scope(|s| {
        for t in 0..threads {
            let db = db.clone();
            s.spawn(move || {
                for i in 0..ops_per_thread {
                    let key = format!("t{t}/k{}", i % KEYS_PER_THREAD);
                    db.run(64, |txn| {
                        let n: u64 = txn
                            .get(key.as_bytes())
                            .map(|v| u64::from_le_bytes(v.as_ref().try_into().unwrap()))
                            .unwrap_or(0);
                        txn.put(key.as_bytes(), &(n + 1).to_le_bytes());
                        Ok(())
                    })
                    .expect("disjoint keys cannot conflict");
                }
            });
        }
    });
    db.flush_wal().expect("no bookie failures injected");
    let elapsed_us = started.elapsed().as_micros();

    let wal_stats = db.wal_stats().unwrap_or_default();
    Row {
        threads,
        isolation,
        durability,
        commits: (threads * ops_per_thread) as u64,
        elapsed_us,
        wal_records: wal_stats.records,
        wal_flushes: wal_stats.flushes,
        batch_factor: wal_stats.batch_factor(),
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let ops_per_thread: usize = args
        .next()
        .map(|a| a.parse().expect("ops per thread must be a number"))
        .unwrap_or(2_000);
    let flush_delay_us: u64 = args
        .next()
        .map(|a| a.parse().expect("flush delay must be microseconds"))
        .unwrap_or(0);

    println!("# store concurrency: {ops_per_thread} ops/thread, {flush_delay_us} µs flush delay");
    println!(
        "{:>7} {:>4} {:>8} {:>10} {:>12} {:>12} {:>8}",
        "threads", "iso", "dur", "commits", "tps", "wal_flushes", "batchf"
    );

    let mut rows = Vec::new();
    for durability in [Durability::None, Durability::Batched, Durability::Sync] {
        for isolation in [IsolationLevel::Snapshot, IsolationLevel::WriteSnapshot] {
            for threads in THREAD_COUNTS {
                let row = bench_one(
                    threads,
                    isolation,
                    durability,
                    ops_per_thread,
                    flush_delay_us,
                );
                println!(
                    "{:>7} {:>4} {:>8} {:>10} {:>12.0} {:>12} {:>8.2}",
                    row.threads,
                    iso_name(row.isolation),
                    dur_name(row.durability),
                    row.commits,
                    row.throughput_tps(),
                    row.wal_flushes,
                    row.batch_factor,
                );
                rows.push(row);
            }
        }
    }

    let mut json = String::from("[\n");
    for (i, row) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "  {{\"threads\": {}, \"isolation\": \"{}\", \"durability\": \"{}\", \
             \"commits\": {}, \"elapsed_us\": {}, \"throughput_tps\": {:.1}, \
             \"wal_records\": {}, \"wal_flushes\": {}, \"batch_factor\": {:.3}}}{}",
            row.threads,
            iso_name(row.isolation),
            dur_name(row.durability),
            row.commits,
            row.elapsed_us,
            row.throughput_tps(),
            row.wal_records,
            row.wal_flushes,
            row.batch_factor,
            if i + 1 == rows.len() { "\n" } else { ",\n" },
        );
    }
    json.push(']');
    json.push('\n');
    let path = "BENCH_store_concurrency.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("\n-> {path}"),
        Err(e) => eprintln!("warning: cannot write {path}: {e}"),
    }
}

//! Multi-threaded throughput of the embedded store across thread counts,
//! isolation levels, and durability modes.
//!
//! ```text
//! cargo run -p wsi-bench --release --bin store_concurrency
//! cargo run -p wsi-bench --release --bin store_concurrency -- 5000 200
//! #                                            ops per thread ^    ^ WAL flush delay (µs)
//! cargo run -p wsi-bench --release --bin store_concurrency -- --no-obs
//! ```
//!
//! Each configuration runs `threads` workers, every worker performing
//! read-two-write-one transactions over its own key range (no conflicts:
//! the numbers measure the commit path, not abort/retry behaviour). With
//! two read rows per write row, the oracle's conflict-check load exposes
//! the paper's §6.3 asymmetry directly: WSI checks the read set (two
//! `lastCommit` loads per transaction) where SI checks the write set (one),
//! so `rows_checked` under WSI is ≈ 2× SI at identical workload. The
//! optional simulated flush delay models a replication round-trip, which is
//! what makes group-commit batching visible in the `Sync` rows: throughput
//! should fall far less than the per-commit delay would predict, and the
//! WAL batch factor should grow with the thread count.
//!
//! `--no-obs` disables the metrics registry and span sampling, giving the
//! baseline for the observability layer's overhead budget (≤ 5%).
//!
//! Results go to stdout as a table and to `BENCH_store_concurrency.json`;
//! unless `--no-obs` is given, each configuration's full metrics snapshot
//! goes to `BENCH_store_concurrency_metrics.json` and the last
//! configuration's Prometheus text to `BENCH_store_concurrency_metrics.prom`.

use std::fmt::Write as _;
use std::thread;
use std::time::Instant;

use wsi_core::IsolationLevel;
use wsi_store::{Db, DbOptions, Durability};
use wsi_wal::LedgerConfig;

const THREAD_COUNTS: [usize; 5] = [1, 2, 4, 8, 16];
const KEYS_PER_THREAD: usize = 64;

struct Row {
    threads: usize,
    isolation: IsolationLevel,
    durability: Durability,
    commits: u64,
    elapsed_us: u128,
    rows_checked: u64,
    rows_recorded: u64,
    wal_records: u64,
    wal_flushes: u64,
    batch_factor: f64,
    /// Full registry snapshot rendered as JSON (empty with `--no-obs`).
    metrics_json: String,
    /// Prometheus exposition text (empty with `--no-obs`).
    prometheus: String,
}

impl Row {
    fn throughput_tps(&self) -> f64 {
        if self.elapsed_us == 0 {
            0.0
        } else {
            self.commits as f64 / (self.elapsed_us as f64 / 1e6)
        }
    }
}

fn iso_name(isolation: IsolationLevel) -> &'static str {
    match isolation {
        IsolationLevel::Snapshot => "si",
        IsolationLevel::WriteSnapshot => "wsi",
    }
}

fn dur_name(durability: Durability) -> &'static str {
    match durability {
        Durability::None => "none",
        Durability::Batched => "batched",
        Durability::Sync => "sync",
    }
}

fn bench_one(
    threads: usize,
    isolation: IsolationLevel,
    durability: Durability,
    ops_per_thread: usize,
    flush_delay_us: u64,
    obs: bool,
) -> Row {
    let wal = LedgerConfig::default_replicated().with_flush_delay_us(flush_delay_us);
    let mut options = DbOptions::new(isolation).with_obs(obs);
    match durability {
        Durability::None => {}
        Durability::Batched => options = options.durable_batched(wal),
        Durability::Sync => options = options.durable(wal),
    }
    let db = Db::open(options);

    let started = Instant::now();
    thread::scope(|s| {
        for t in 0..threads {
            let db = db.clone();
            s.spawn(move || {
                for i in 0..ops_per_thread {
                    // Read-two-write-one over a private key range: the §6.3
                    // workload shape (|R_r| = 2·|R_w|) without conflicts.
                    let key = format!("t{t}/k{}", i % KEYS_PER_THREAD);
                    let other = format!("t{t}/k{}", (i + 1) % KEYS_PER_THREAD);
                    db.run(64, |txn| {
                        let n: u64 = txn
                            .get(key.as_bytes())
                            .map(|v| u64::from_le_bytes(v.as_ref().try_into().unwrap()))
                            .unwrap_or(0);
                        let m: u64 = txn
                            .get(other.as_bytes())
                            .map(|v| u64::from_le_bytes(v.as_ref().try_into().unwrap()))
                            .unwrap_or(0);
                        txn.put(key.as_bytes(), &(n + m + 1).to_le_bytes());
                        Ok(())
                    })
                    .expect("disjoint key ranges cannot conflict");
                }
            });
        }
    });
    db.flush_wal().expect("no bookie failures injected");
    let elapsed_us = started.elapsed().as_micros();

    let stats = db.stats();
    Row {
        threads,
        isolation,
        durability,
        commits: (threads * ops_per_thread) as u64,
        elapsed_us,
        rows_checked: stats.oracle.rows_checked,
        rows_recorded: stats.oracle.rows_recorded,
        wal_records: stats.wal.records,
        wal_flushes: stats.wal.flushes,
        batch_factor: stats.wal.batch_factor(),
        metrics_json: db
            .obs_snapshot()
            .map(|s| s.render_json())
            .unwrap_or_default(),
        prometheus: db.render_prometheus().unwrap_or_default(),
    }
}

fn main() {
    let mut obs = true;
    let mut positional = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--no-obs" => obs = false,
            other => positional.push(other.to_string()),
        }
    }
    let mut positional = positional.into_iter();
    let ops_per_thread: usize = positional
        .next()
        .map(|a| a.parse().expect("ops per thread must be a number"))
        .unwrap_or(2_000);
    let flush_delay_us: u64 = positional
        .next()
        .map(|a| a.parse().expect("flush delay must be microseconds"))
        .unwrap_or(0);

    println!(
        "# store concurrency: {ops_per_thread} ops/thread, {flush_delay_us} µs flush delay, obs {}",
        if obs { "on" } else { "off" }
    );
    println!(
        "{:>7} {:>4} {:>8} {:>10} {:>12} {:>10} {:>12} {:>8}",
        "threads", "iso", "dur", "commits", "tps", "checked", "wal_flushes", "batchf"
    );

    let mut rows = Vec::new();
    for durability in [Durability::None, Durability::Batched, Durability::Sync] {
        for isolation in [IsolationLevel::Snapshot, IsolationLevel::WriteSnapshot] {
            for threads in THREAD_COUNTS {
                let row = bench_one(
                    threads,
                    isolation,
                    durability,
                    ops_per_thread,
                    flush_delay_us,
                    obs,
                );
                println!(
                    "{:>7} {:>4} {:>8} {:>10} {:>12.0} {:>10} {:>12} {:>8.2}",
                    row.threads,
                    iso_name(row.isolation),
                    dur_name(row.durability),
                    row.commits,
                    row.throughput_tps(),
                    row.rows_checked,
                    row.wal_flushes,
                    row.batch_factor,
                );
                rows.push(row);
            }
        }
    }

    let mut json = String::from("[\n");
    for (i, row) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "  {{\"threads\": {}, \"isolation\": \"{}\", \"durability\": \"{}\", \
             \"commits\": {}, \"elapsed_us\": {}, \"throughput_tps\": {:.1}, \
             \"rows_checked\": {}, \"rows_recorded\": {}, \
             \"wal_records\": {}, \"wal_flushes\": {}, \"batch_factor\": {:.3}}}{}",
            row.threads,
            iso_name(row.isolation),
            dur_name(row.durability),
            row.commits,
            row.elapsed_us,
            row.throughput_tps(),
            row.rows_checked,
            row.rows_recorded,
            row.wal_records,
            row.wal_flushes,
            row.batch_factor,
            if i + 1 == rows.len() { "\n" } else { ",\n" },
        );
    }
    json.push(']');
    json.push('\n');
    let path = "BENCH_store_concurrency.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("\n-> {path}"),
        Err(e) => eprintln!("warning: cannot write {path}: {e}"),
    }

    if obs {
        // Per-configuration registry snapshots, keyed by the same fields as
        // the results array.
        let mut metrics = String::from("[\n");
        for (i, row) in rows.iter().enumerate() {
            let _ = write!(
                metrics,
                "  {{\"threads\": {}, \"isolation\": \"{}\", \"durability\": \"{}\", \
                 \"metrics\": {}}}{}",
                row.threads,
                iso_name(row.isolation),
                dur_name(row.durability),
                if row.metrics_json.is_empty() {
                    "null"
                } else {
                    &row.metrics_json
                },
                if i + 1 == rows.len() { "\n" } else { ",\n" },
            );
        }
        metrics.push(']');
        metrics.push('\n');
        let path = "BENCH_store_concurrency_metrics.json";
        match std::fs::write(path, &metrics) {
            Ok(()) => println!("-> {path}"),
            Err(e) => eprintln!("warning: cannot write {path}: {e}"),
        }

        if let Some(last) = rows.last() {
            let path = "BENCH_store_concurrency_metrics.prom";
            match std::fs::write(path, &last.prometheus) {
                Ok(()) => println!("-> {path}"),
                Err(e) => eprintln!("warning: cannot write {path}: {e}"),
            }
        }
    }
}

//! Flight-recorder overhead: the always-on journal must stay cheap.
//!
//! ```text
//! cargo run -p wsi-bench --release --bin trace_overhead
//! cargo run -p wsi-bench --release --bin trace_overhead -- 8000 4
//! #                                       ops per thread ^    ^ threads
//! ```
//!
//! Runs identical transactional workloads against two [`wsi_store::Db`]
//! instances that differ in exactly one bit: `DbOptions::with_journal`.
//! Both keep the metrics layer on, so the ratio isolates the cost of the
//! seqlock ring writes themselves. Three workload shapes cover the event
//! mix, and each produces the *same event sequence on every run* — the
//! abort-heavy shape manufactures its conflicts deterministically inside
//! each thread rather than hoping the scheduler interleaves a hot set,
//! so the ratio measures the journal and not scheduler luck:
//!
//! * `commit-heavy` — disjoint-key read-modify-writes: begin, per-row
//!   verdicts, commit on every transaction.
//! * `abort-heavy`  — every iteration stages a guaranteed read-write
//!   conflict (read a key, let a rival commit to it, then try to commit):
//!   conflict verdicts with culprit payloads and abort events dominate.
//! * `read-only`    — the single-event fast path (one read-only commit;
//!   begin is journaled only on a first write).
//!
//! Cells run round-robin, best-of-5 (see `oracle_scaling`: interleaving
//! spreads scheduler noise across both arms instead of penalizing one).
//! The acceptance gate is the geometric mean of the journal-on/journal-off
//! throughput ratios: **≥ 0.95** (≤ 5% overhead), and the process exits
//! nonzero when it regresses, so CI can run this directly.
//!
//! Artifacts: `BENCH_trace_overhead.json` (per-cell results plus the gate
//! summary) and `TRACE_flight_recorder.json` (a Chrome `trace_event`
//! export of a small journaled run — load it in `chrome://tracing` or
//! Perfetto; `scripts/bench_smoke.sh` validates its schema).

use std::fmt::Write as _;
use std::sync::Arc;
use std::thread;
use std::time::Instant;

use wsi_core::IsolationLevel;
use wsi_store::{Db, DbOptions};

const REPEATS: usize = 5;
const GATE_MIN_RATIO: f64 = 0.95;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Shape {
    CommitHeavy,
    AbortHeavy,
    ReadOnly,
}

impl Shape {
    const ALL: [Shape; 3] = [Shape::CommitHeavy, Shape::AbortHeavy, Shape::ReadOnly];

    fn name(self) -> &'static str {
        match self {
            Shape::CommitHeavy => "commit-heavy",
            Shape::AbortHeavy => "abort-heavy",
            Shape::ReadOnly => "read-only",
        }
    }

    /// Per-shape op multiplier: read-only transactions run ~5× faster than
    /// the write shapes, so they get more ops to keep every cell's wall
    /// time in the same regime — a cell that finishes in single-digit
    /// milliseconds measures the scheduler, not the journal.
    fn ops_multiplier(self) -> u64 {
        match self {
            Shape::CommitHeavy | Shape::AbortHeavy => 1,
            Shape::ReadOnly => 8,
        }
    }
}

fn open_db(journal: bool) -> Db {
    Db::open(DbOptions::new(IsolationLevel::WriteSnapshot).with_journal(journal))
}

/// Runs one workload shape and returns (elapsed µs, transactions).
fn run_shape(db: &Db, shape: Shape, threads: usize, ops_per_thread: u64) -> (u128, u64) {
    // Seed the key space so reads observe real versions.
    {
        let mut txn = db.begin();
        for k in 0u64..64 {
            txn.put(k.to_be_bytes().as_slice(), b"seed");
        }
        txn.commit().expect("seeding cannot conflict");
    }
    let db = db.clone();
    let started = Instant::now();
    thread::scope(|s| {
        for t in 0..threads {
            let db = db.clone();
            s.spawn(move || {
                for i in 0..ops_per_thread {
                    match shape {
                        Shape::CommitHeavy => {
                            // Private key range: every transaction commits.
                            let k = (t as u64) << 32 | (i % 1024);
                            let mut txn = db.begin();
                            let _ = txn.get(k.to_be_bytes().as_slice());
                            txn.put(k.to_be_bytes().as_slice(), b"v");
                            txn.commit().expect("disjoint keys commit");
                        }
                        Shape::AbortHeavy => {
                            // Deterministic conflict, private key per thread:
                            // the victim reads k, a rival then commits to k,
                            // so the victim's commit always aborts with a
                            // read-write verdict naming the rival.
                            let k = (t as u64) << 32 | (i % 1024);
                            let mut victim = db.begin();
                            let _ = victim.get(k.to_be_bytes().as_slice());
                            let mut rival = db.begin();
                            rival.put(k.to_be_bytes().as_slice(), b"r");
                            rival.commit().expect("rival is unopposed");
                            victim.put(k.to_be_bytes().as_slice(), b"v");
                            let _ = victim.commit(); // the abort is the point
                        }
                        Shape::ReadOnly => {
                            let k = i % 64;
                            let mut txn = db.begin();
                            let _ = txn.get(k.to_be_bytes().as_slice());
                            let _ = txn.commit();
                        }
                    }
                }
            });
        }
    });
    let txns_per_op = if shape == Shape::AbortHeavy { 2 } else { 1 };
    (
        started.elapsed().as_micros(),
        threads as u64 * ops_per_thread * txns_per_op,
    )
}

struct Cell {
    shape: Shape,
    journal: bool,
    best_elapsed_us: u128,
    txns: u64,
}

impl Cell {
    fn throughput(&self) -> f64 {
        if self.best_elapsed_us == 0 {
            0.0
        } else {
            self.txns as f64 / (self.best_elapsed_us as f64 / 1e6)
        }
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let ops_per_thread: u64 = args
        .next()
        .map(|a| a.parse().expect("ops per thread must be a number"))
        .unwrap_or(8_000);
    let threads: usize = args
        .next()
        .map(|a| a.parse().expect("threads must be a number"))
        .unwrap_or_else(|| {
            // Oversubscribing a small box serializes both arms behind the
            // scheduler and drowns the signal; default to the hardware.
            std::thread::available_parallelism()
                .map(|n| n.get().min(4))
                .unwrap_or(1)
        });

    println!(
        "# trace overhead: {ops_per_thread} txns/thread x {threads} threads, \
         journal on vs off, best of {REPEATS}"
    );

    let mut cells: Vec<Cell> = Shape::ALL
        .iter()
        .flat_map(|&shape| {
            [false, true].map(|journal| Cell {
                shape,
                journal,
                best_elapsed_us: u128::MAX,
                txns: 0,
            })
        })
        .collect();

    // Round-robin repeats: each round touches every cell once, so a slow
    // stretch of wall clock degrades both journal arms alike. Fresh Db per
    // sample — the journal ring wraps silently, so reuse is fine, but a
    // fresh version store keeps GC pressure identical across arms.
    for _ in 0..REPEATS {
        for cell in &mut cells {
            let db = Arc::new(open_db(cell.journal));
            let ops = ops_per_thread * cell.shape.ops_multiplier();
            let (elapsed, txns) = run_shape(&db, cell.shape, threads, ops);
            cell.txns = txns;
            cell.best_elapsed_us = cell.best_elapsed_us.min(elapsed);
        }
    }

    println!(
        "{:>13} {:>8} {:>10} {:>12}",
        "shape", "journal", "txns", "tps"
    );
    for cell in &cells {
        println!(
            "{:>13} {:>8} {:>10} {:>12.0}",
            cell.shape.name(),
            if cell.journal { "on" } else { "off" },
            cell.txns,
            cell.throughput(),
        );
    }

    // Per-shape on/off ratio and the geometric mean across shapes.
    let mut ratios: Vec<(Shape, f64)> = Vec::new();
    for &shape in &Shape::ALL {
        let tps = |journal: bool| {
            cells
                .iter()
                .find(|c| c.shape == shape && c.journal == journal)
                .map(Cell::throughput)
                .unwrap_or(0.0)
        };
        let off = tps(false);
        let ratio = if off > 0.0 { tps(true) / off } else { 0.0 };
        ratios.push((shape, ratio));
    }
    let geomean = (ratios
        .iter()
        .map(|(_, r)| r.max(f64::MIN_POSITIVE).ln())
        .sum::<f64>()
        / ratios.len() as f64)
        .exp();
    let overhead_pct = (1.0 - geomean) * 100.0;
    let pass = geomean >= GATE_MIN_RATIO;

    for (shape, ratio) in &ratios {
        println!("{:>13} on/off ratio: {ratio:.3}", shape.name());
    }
    println!(
        "\ngeomean on/off ratio: {geomean:.3} ({overhead_pct:+.1}% overhead, gate >= {GATE_MIN_RATIO}) -> {}",
        if pass { "PASS" } else { "FAIL" }
    );

    // A small journaled run exported as a Chrome trace, for the smoke
    // script's schema validation and for eyeballing in Perfetto.
    let db = open_db(true);
    let _ = run_shape(&db, Shape::AbortHeavy, 2, 64);
    let trace = db
        .journal_chrome_trace()
        .expect("journal enabled for the trace export");
    let trace_path = "TRACE_flight_recorder.json";
    match std::fs::write(trace_path, &trace) {
        Ok(()) => println!("-> {trace_path}"),
        Err(e) => eprintln!("warning: cannot write {trace_path}: {e}"),
    }

    let mut json = String::from("{\n  \"results\": [\n");
    for (i, cell) in cells.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"shape\": \"{}\", \"journal\": {}, \"threads\": {}, \"txns\": {}, \
             \"elapsed_us\": {}, \"throughput_tps\": {:.1}}}{}",
            cell.shape.name(),
            cell.journal,
            threads,
            cell.txns,
            cell.best_elapsed_us,
            cell.throughput(),
            if i + 1 == cells.len() { "\n" } else { ",\n" },
        );
    }
    let _ = write!(
        json,
        "  ],\n  \"summary\": {{\n    \"ops_per_thread\": {ops_per_thread},\n    \
         \"threads\": {threads},\n    \"repeats\": {REPEATS},\n"
    );
    for (shape, ratio) in &ratios {
        let _ = writeln!(json, "    \"ratio_{}\": {ratio:.4},", shape.name());
    }
    let _ = write!(
        json,
        "    \"geomean_on_off_ratio\": {geomean:.4},\n    \
         \"overhead_pct\": {overhead_pct:.2},\n    \
         \"gate_min_ratio\": {GATE_MIN_RATIO},\n    \"pass\": {pass}\n  }}\n}}\n"
    );
    let path = "BENCH_trace_overhead.json";
    match std::fs::write(path, &json) {
        Ok(()) => println!("-> {path}"),
        Err(e) => eprintln!("warning: cannot write {path}: {e}"),
    }

    if !pass {
        eprintln!("trace overhead gate failed: journal costs more than 5% geomean");
        std::process::exit(1);
    }
}

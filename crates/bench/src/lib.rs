//! Shared reporting helpers for the figure harness and benches.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

use wsi_sim::metrics::Series;

/// A paper-reported reference value attached to a measured one.
#[derive(Debug, Clone, Copy)]
pub struct PaperRef {
    /// What is being compared (e.g. "WSI peak TPS").
    pub what: &'static str,
    /// The paper's number.
    pub paper: f64,
    /// Our measured number.
    pub measured: f64,
}

impl PaperRef {
    /// Ratio `measured / paper` (∞-safe).
    pub fn ratio(&self) -> f64 {
        if self.paper == 0.0 {
            f64::NAN
        } else {
            self.measured / self.paper
        }
    }
}

/// Renders a figure's series as an aligned text table.
pub fn render_series(title: &str, series: &[Series]) -> String {
    let mut out = String::new();
    out.push_str(&format!("## {title}\n"));
    out.push_str(&format!(
        "{:<6} {:>8} {:>12} {:>14} {:>12}\n",
        "curve", "load", "tps", "latency_ms", "abort_rate"
    ));
    for s in series {
        for p in &s.points {
            out.push_str(&format!(
                "{:<6} {:>8} {:>12.1} {:>14.2} {:>12.4}\n",
                s.label, p.load, p.tps, p.latency_ms, p.abort_rate
            ));
        }
    }
    out
}

/// Renders paper-vs-measured reference lines.
pub fn render_refs(refs: &[PaperRef]) -> String {
    let mut out = String::new();
    for r in refs {
        out.push_str(&format!(
            "  {:<40} paper {:>10.2}  measured {:>10.2}  ratio {:>5.2}\n",
            r.what,
            r.paper,
            r.measured,
            r.ratio()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsi_sim::metrics::Point;

    #[test]
    fn render_contains_points() {
        let mut s = Series::new("wsi");
        s.push(Point {
            load: 5.0,
            tps: 123.0,
            latency_ms: 42.0,
            abort_rate: 0.1,
        });
        let text = render_series("Figure X", &[s]);
        assert!(text.contains("Figure X"));
        assert!(text.contains("wsi"));
        assert!(text.contains("123.0"));
    }

    #[test]
    fn ratio_handles_zero_paper_value() {
        let r = PaperRef {
            what: "x",
            paper: 0.0,
            measured: 1.0,
        };
        assert!(r.ratio().is_nan());
        let ok = PaperRef {
            what: "y",
            paper: 2.0,
            measured: 1.0,
        };
        assert!((ok.ratio() - 0.5).abs() < 1e-12);
    }
}

//! Property tests of the data-tier model: routing coverage, cache behavior
//! against a reference LRU, and version storage against a naive model.

use bytes::Bytes;
use proptest::prelude::*;
use wsi_core::Timestamp;
use wsi_kvstore::{BlockCache, DataCluster, RegionStore, Routing, ServerConfig, VersionFate};
use wsi_sim::SimRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every row routes to exactly one in-range server, under both policies.
    #[test]
    fn routing_is_total_and_in_range(
        servers in 1usize..40,
        rows in 1u64..100_000,
        samples in prop::collection::vec(any::<u64>(), 1..50),
    ) {
        for routing in [Routing::Range, Routing::Hash] {
            let c = DataCluster::with_routing(
                servers,
                rows,
                ServerConfig::paper_default(),
                &SimRng::new(1),
                routing,
            );
            for &s in &samples {
                let region = c.region_for(s % (rows * 2)); // incl. out-of-range
                prop_assert!(region.0 < servers);
            }
        }
    }

    /// The block cache agrees with a straightforward reference LRU.
    #[test]
    fn cache_matches_reference_lru(
        capacity in 1usize..16,
        accesses in prop::collection::vec(0u64..32, 1..200),
    ) {
        let mut cache = BlockCache::new(capacity);
        let mut reference: Vec<u64> = Vec::new(); // most recent at the back
        for &block in &accesses {
            let expect_hit = reference.contains(&block);
            let hit = cache.access(block);
            prop_assert_eq!(hit, expect_hit, "block {}", block);
            reference.retain(|&b| b != block);
            reference.push(block);
            if reference.len() > capacity {
                reference.remove(0);
            }
        }
        prop_assert_eq!(cache.len(), reference.len());
    }

    /// RegionStore snapshot reads agree with a naive full-scan model.
    #[test]
    fn region_store_matches_naive_model(
        // (row, writer_start, commits_at_delta or abort)
        versions in prop::collection::vec(
            (0u64..6, 1u64..50, prop::option::of(1u64..20)),
            1..40,
        ),
        reader_start in 1u64..100,
    ) {
        let mut store = RegionStore::new();
        // One writer per start timestamp: the oracle never reuses a start
        // timestamp, so a start maps to exactly one transaction fate.
        let mut seen = std::collections::HashSet::new();
        let mut commit_seen = std::collections::HashSet::new();
        let mut table: Vec<(u64, u64, Option<u64>)> = Vec::new();
        for &(row, start, commit_delta) in &versions {
            // The oracle issues start and commit timestamps from one
            // monotonic counter: no two transactions share either.
            let commit = commit_delta.map(|d| start + d);
            if let Some(c) = commit {
                if !commit_seen.insert(c) || seen.contains(&c) {
                    continue;
                }
            }
            if seen.insert(start) && !commit_seen.contains(&start) {
                store.put(row, Timestamp(start), Bytes::from(format!("{row}@{start}")));
                table.push((row, start, commit));
            }
        }
        let lookup = |ts: Timestamp| {
            table
                .iter()
                .find(|&&(_, s, _)| Timestamp(s) == ts)
                .map(|&(_, _, commit)| match commit {
                    Some(c) => VersionFate::Committed(Timestamp(c)),
                    None => VersionFate::Aborted,
                })
                .unwrap_or(VersionFate::Pending)
        };
        for row in 0..6u64 {
            // Naive model: the committed version with the largest commit
            // timestamp strictly below the reader snapshot.
            let expected = table
                .iter()
                .filter(|&&(r, _, c)| r == row && c.is_some())
                .filter(|&&(_, _, c)| c.unwrap() < reader_start)
                .max_by_key(|&&(_, _, c)| c.unwrap())
                .map(|&(r, s, _)| format!("{r}@{s}"));
            let actual = store
                .get(row, Timestamp(reader_start), &lookup)
                .map(|b| String::from_utf8(b.to_vec()).unwrap());
            prop_assert_eq!(actual, expected, "row {}", row);
        }
    }

    /// Reads and writes never complete before their arrival, and timing is
    /// deterministic for equal seeds.
    #[test]
    fn server_timing_is_causal_and_deterministic(
        ops in prop::collection::vec((any::<bool>(), 0u64..1000, 0u64..50_000), 1..60,),
    ) {
        let run = || {
            let mut c = DataCluster::new(
                4,
                1000,
                ServerConfig::paper_default(),
                &SimRng::new(9),
            );
            let mut sorted = ops.clone();
            sorted.sort_by_key(|&(_, _, t)| t);
            let mut outs = Vec::new();
            for &(is_read, row, at) in &sorted {
                let now = wsi_sim::SimTime(at);
                let done = if is_read {
                    c.read(row, now).done
                } else {
                    c.write(row, now, false)
                };
                assert!(done >= now);
                outs.push(done);
            }
            outs
        };
        prop_assert_eq!(run(), run());
    }
}

//! The region server: request handling, cache, and disk timing model.

use wsi_obs::{EventData, Journal};
use wsi_sim::{SimRng, SimTime, Station};

use crate::cache::BlockCache;
use crate::obs::KvObs;
use crate::table::RegionStore;

/// Region-server timing and sizing parameters.
///
/// Defaults reproduce the paper's §6.2 microbenchmark: a random (cache-miss)
/// read costs 38.8 ms end to end — "the cost of loading an entire block from
/// HDFS" — and a write costs 1.13 ms — "writing into memory and appending
/// into a write-ahead log".
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// RPC handler threads per server.
    pub handlers: usize,
    /// CPU time a handler spends per request.
    pub handler_time: SimTime,
    /// Parallel IO channels to HDFS.
    pub disks: usize,
    /// Service time of one HDFS block load.
    pub disk_read_time: SimTime,
    /// Extra time for a cache-hit read beyond the handler.
    pub cache_hit_time: SimTime,
    /// Memstore append + WAL time for a write, beyond the handler.
    pub write_time: SimTime,
    /// Block-cache capacity in blocks.
    pub cache_blocks: usize,
    /// Consecutive rows per HFile block.
    pub rows_per_block: u64,
    /// Relative jitter applied to service times.
    pub jitter: f64,
    /// Deferred per-read CPU charged to the handler pool *after* the
    /// response leaves (block decode, checksums, GC pressure — work that
    /// bounds server capacity without appearing in a lone request's
    /// latency). This is how a server whose single-op read latency is
    /// ≈ 1 ms (cache hit) still tops out at a few hundred ops/s, as the
    /// paper's 2006-era dual-core servers do (§6.5: "the cost of processing
    /// messages saturates the data servers").
    pub background_read_cpu: SimTime,
    /// Deferred per-write CPU (WAL sync amortization, memstore flushes,
    /// compaction debt).
    pub background_write_cpu: SimTime,
    /// Deferred per-*insert* CPU: a fresh row grows the memstore and, at
    /// HBase's flush/compaction cadence, is rewritten several times —
    /// write amplification charged here. This is what drags the
    /// zipfianLatest workload below even the uniform one in the paper
    /// (Fig. 9: 361 TPS vs Fig. 6: 391 TPS) despite its cache-friendly
    /// reads.
    pub background_insert_cpu: SimTime,
}

impl ServerConfig {
    /// The paper's measured latencies — 38.8 ms miss reads, 1.13 ms
    /// writes — with capacity calibrated to the 25-server deployment:
    /// dual-core servers (2 handlers), 2 IO channels per server.
    pub fn paper_default() -> Self {
        ServerConfig {
            handlers: 2,
            handler_time: SimTime::from_us(300),
            disks: 3,
            disk_read_time: SimTime::from_ms_f64(38.5),
            cache_hit_time: SimTime::from_us(700),
            write_time: SimTime::from_us(830),
            // Row-granularity caching: with hashed routing a 64-row HFile
            // block's rows scatter over all servers, so block-level entries
            // would dilute 25×. One entry per row with the equivalent byte
            // budget (≈280 K rows ≈ 4 400 64-row blocks) reproduces the
            // steady-state hit rates of HBase's block cache.
            cache_blocks: 80_000,
            rows_per_block: 1,
            jitter: 0.10,
            background_read_cpu: SimTime::from_us(4_500),
            background_write_cpu: SimTime::from_ms(3),
            background_insert_cpu: SimTime::from_ms(50),
        }
    }
}

/// Outcome of a timed read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadOutcome {
    /// When the response leaves the server.
    pub done: SimTime,
    /// Whether the block cache served it.
    pub cache_hit: bool,
}

/// Cumulative server counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Reads processed.
    pub reads: u64,
    /// Of which served from cache.
    pub cache_hits: u64,
    /// Writes processed.
    pub writes: u64,
}

/// One data server: a range of rows, a block cache, handler and disk
/// queues, and the functional version store.
#[derive(Debug)]
pub struct RegionServer {
    /// Server index within the cluster.
    pub id: usize,
    config: ServerConfig,
    handler: Station,
    disk: Station,
    cache: BlockCache,
    store: RegionStore,
    rng: SimRng,
    stats: ServerStats,
    obs: Option<KvObs>,
    journal: Option<Journal>,
}

impl RegionServer {
    /// Creates a server with the given timing model and RNG stream.
    pub fn new(id: usize, config: ServerConfig, rng: SimRng) -> Self {
        RegionServer {
            id,
            handler: Station::new(config.handlers),
            disk: Station::new(config.disks),
            cache: BlockCache::new(config.cache_blocks),
            store: RegionStore::new(),
            rng,
            config,
            stats: ServerStats::default(),
            obs: None,
            journal: None,
        }
    }

    /// Attaches shared metric handles; [`KvObs`] clones share atomics, so
    /// one handle attached to every server aggregates cluster-wide.
    pub fn attach_obs(&mut self, obs: KvObs) {
        obs.reads.add(self.stats.reads);
        obs.cache_hits.add(self.stats.cache_hits);
        obs.cache_misses
            .add(self.stats.reads - self.stats.cache_hits);
        obs.writes.add(self.stats.writes);
        self.obs = Some(obs);
    }

    /// Attaches a flight-recorder journal. [`Journal`] clones share the
    /// underlying rings, so one journal attached to every server of a
    /// cluster records a single cluster-wide causal stream; request events
    /// carry no transaction id (the data tier is below the oracle), so they
    /// are recorded against txn 0 like other infrastructure events.
    pub fn attach_journal(&mut self, journal: Journal) {
        self.journal = Some(journal);
    }

    /// The attached journal, if any.
    pub fn journal(&self) -> Option<&Journal> {
        self.journal.as_ref()
    }

    fn block_of(&self, row: u64) -> u64 {
        row / self.config.rows_per_block
    }

    /// Times a read of `row` arriving at `now`.
    pub fn read(&mut self, row: u64, now: SimTime) -> ReadOutcome {
        self.stats.reads += 1;
        let handler_time = self
            .rng
            .jittered(self.config.handler_time, self.config.jitter);
        let after_handler = self.handler.submit(now, handler_time);
        let hit = self.cache.access(self.block_of(row));
        let outcome = if hit {
            self.stats.cache_hits += 1;
            let extra = self
                .rng
                .jittered(self.config.cache_hit_time, self.config.jitter);
            ReadOutcome {
                done: after_handler + extra,
                cache_hit: true,
            }
        } else {
            let io = self
                .rng
                .jittered(self.config.disk_read_time, self.config.jitter);
            ReadOutcome {
                done: self.disk.submit(after_handler, io),
                cache_hit: false,
            }
        };
        // Deferred CPU: capacity accounting. Submitted at arrival time (the
        // station is FIFO in submission order) *after* the response path was
        // timed, so it consumes pool capacity without delaying this response.
        if self.config.background_read_cpu > SimTime::ZERO {
            let bg = self
                .rng
                .jittered(self.config.background_read_cpu, self.config.jitter);
            self.handler.submit(now, bg);
        }
        if let Some(obs) = &self.obs {
            obs.reads.inc();
            if outcome.cache_hit {
                obs.cache_hits.inc();
            } else {
                obs.cache_misses.inc();
            }
            obs.read_us.record(outcome.done.saturating_sub(now).as_us());
        }
        if let Some(journal) = &self.journal {
            journal.record(
                0,
                EventData::ServerRead {
                    row,
                    cache_hit: outcome.cache_hit,
                },
            );
        }
        outcome
    }

    /// Times a write arriving at `now` (memstore append; block cache is
    /// write-through for the row's block, as a memstore read is a hit).
    /// `insert` marks a write that creates a new row, which additionally
    /// pays the amortized flush/compaction cost.
    pub fn write(&mut self, row: u64, now: SimTime, insert: bool) -> SimTime {
        self.stats.writes += 1;
        let handler_time = self
            .rng
            .jittered(self.config.handler_time, self.config.jitter);
        let after_handler = self.handler.submit(now, handler_time);
        self.cache.access(self.block_of(row));
        let extra = self
            .rng
            .jittered(self.config.write_time, self.config.jitter);
        let done = after_handler + extra;
        let bg_base = if insert {
            self.config.background_insert_cpu
        } else {
            self.config.background_write_cpu
        };
        if bg_base > SimTime::ZERO {
            let bg = self.rng.jittered(bg_base, self.config.jitter);
            self.handler.submit(now, bg);
        }
        if let Some(obs) = &self.obs {
            obs.writes.inc();
            obs.write_us.record(done.saturating_sub(now).as_us());
        }
        if let Some(journal) = &self.journal {
            journal.record(0, EventData::ServerWrite { row });
        }
        done
    }

    /// Pre-warms the block cache with `row` (steady-state initialization).
    pub fn prewarm(&mut self, row: u64) {
        let block = self.block_of(row);
        self.cache.warm(block);
    }

    /// The functional version store (contents of this server's regions).
    pub fn store(&self) -> &RegionStore {
        &self.store
    }

    /// Mutable access to the functional version store.
    pub fn store_mut(&mut self) -> &mut RegionStore {
        &mut self.store
    }

    /// Lifetime cache hit rate.
    pub fn cache_hit_rate(&self) -> f64 {
        self.cache.hit_rate()
    }

    /// Cumulative counters.
    pub fn stats(&self) -> ServerStats {
        self.stats
    }

    /// Handler-pool utilization over `elapsed`.
    pub fn handler_utilization(&self, elapsed: SimTime) -> f64 {
        self.handler.utilization(elapsed)
    }

    /// Disk-channel utilization over `elapsed`.
    pub fn disk_utilization(&self, elapsed: SimTime) -> f64 {
        self.disk.utilization(elapsed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server() -> RegionServer {
        RegionServer::new(0, ServerConfig::paper_default(), SimRng::new(7))
    }

    #[test]
    fn cold_read_costs_about_38_8_ms() {
        let mut s = server();
        let out = s.read(1, SimTime::ZERO);
        assert!(!out.cache_hit);
        let ms = out.done.as_ms_f64();
        assert!((33.0..45.0).contains(&ms), "cold read took {ms} ms");
    }

    #[test]
    fn warm_read_is_fast() {
        let mut s = server();
        let first = s.read(1, SimTime::ZERO);
        let warm = s.read(1, first.done);
        assert!(warm.cache_hit);
        let ms = (warm.done - first.done).as_ms_f64();
        assert!(ms < 2.0, "warm read took {ms} ms");
    }

    #[test]
    fn write_costs_about_1_13_ms() {
        let mut s = server();
        let done = s.write(1, SimTime::ZERO, false);
        let ms = done.as_ms_f64();
        assert!((0.9..1.4).contains(&ms), "write took {ms} ms");
    }

    #[test]
    fn rows_in_same_block_share_cache_entry() {
        let mut cfg = ServerConfig::paper_default();
        cfg.rows_per_block = 64;
        let mut s = RegionServer::new(0, cfg, SimRng::new(7));
        let first = s.read(0, SimTime::ZERO);
        // Row 1 is in row 0's block (64 rows/block).
        let neighbour = s.read(1, first.done);
        assert!(neighbour.cache_hit);
        // Row 64 is in the next block: a miss.
        let far = s.read(64, first.done);
        assert!(!far.cache_hit);
    }

    #[test]
    fn disk_queueing_kicks_in_under_load() {
        let mut s = server();
        // 30 concurrent cold reads over 3 disk channels: the tail waits
        // ~10 service times.
        let mut last = SimTime::ZERO;
        for row in (0..30u64).map(|i| i * 1000) {
            last = last.max(s.read(row, SimTime::ZERO).done);
        }
        assert!(
            last.as_ms_f64() > 300.0,
            "queueing should stretch the tail: {last}"
        );
    }

    #[test]
    fn journal_records_reads_and_writes() {
        let mut s = server();
        let journal = Journal::new();
        s.attach_journal(journal.clone());
        let first = s.read(5, SimTime::ZERO);
        assert!(!first.cache_hit);
        s.read(5, first.done);
        s.write(9, SimTime::ZERO, false);
        let events = journal.snapshot();
        assert_eq!(events.len(), 3);
        assert_eq!(
            events[0].data,
            EventData::ServerRead {
                row: 5,
                cache_hit: false
            }
        );
        assert_eq!(
            events[1].data,
            EventData::ServerRead {
                row: 5,
                cache_hit: true
            }
        );
        assert_eq!(events[2].data, EventData::ServerWrite { row: 9 });
    }

    #[test]
    fn stats_track_activity() {
        let mut s = server();
        s.read(1, SimTime::ZERO);
        s.read(1, SimTime::from_ms(50));
        s.write(2, SimTime::from_ms(60), false);
        let st = s.stats();
        assert_eq!((st.reads, st.cache_hits, st.writes), (2, 1, 1));
        assert!(s.cache_hit_rate() > 0.0);
        assert!(s.handler_utilization(SimTime::from_ms(60)) > 0.0);
    }
}

//! An HBase-like region-partitioned, multi-version key-value store model.
//!
//! The paper's prototypes run against HBase: "a scalable key-value store,
//! which supports multiple versions of data. It splits groups of consecutive
//! rows of a table into multiple regions, and each region is maintained by a
//! single data server (RegionServer in HBase terminology)" (§6). This crate
//! models exactly that shape for the cluster simulation, with the two things
//! the figures depend on:
//!
//! * **Functional multi-version storage** ([`RegionStore`]): `put` writes a
//!   version tagged with the writer's start timestamp; `get` resolves the
//!   §2.2 snapshot-read rule through a caller-supplied commit-lookup (the
//!   client-replicated commit table).
//! * **A latency model** ([`RegionServer`]): request handlers, an LRU block
//!   cache, and a disk path. The paper measured random reads at 38.8 ms
//!   (HDFS block loads) and writes at 1.13 ms (memstore append + WAL); the
//!   uniform-vs-zipfian throughput gap of Figures 6 vs 7 is a cache-hit-rate
//!   effect this model reproduces.
//!
//! Rows are `u64` identifiers (the YCSB key space); the stored values are
//! real bytes so the simulation moves actual data, not phantoms.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

mod cache;
mod obs;
mod region;
mod server;
mod table;

pub use cache::BlockCache;
pub use obs::KvObs;
pub use region::{DataCluster, RegionId, Routing};
pub use server::{ReadOutcome, RegionServer, ServerConfig, ServerStats};
pub use table::{RegionStore, VersionFate, VersionLookup};

//! Data-tier observability: block-cache and read-latency metrics.
//!
//! A [`KvObs`] handle is attached to a [`crate::RegionServer`] (or to every
//! server of a [`crate::DataCluster`] at once) and mirrors the per-server
//! counters onto lock-free [`wsi_obs`] series. Because `Clone` shares the
//! underlying atomics, one handle attached cluster-wide aggregates across
//! all servers while each server's own [`crate::ServerStats`] stays exact.
//!
//! Latencies recorded here are **simulated** microseconds (the block-device
//! timing model of the paper's Appendix), not wall-clock — the distribution
//! of `ReadOutcome::done - now`, which is what the paper's §6 read-latency
//! figures report.

use wsi_obs::{Counter, Histogram, Registry};

/// Lock-free metric handles for the data tier.
#[derive(Debug, Clone, Default)]
pub struct KvObs {
    /// Reads processed.
    pub reads: Counter,
    /// Reads served from the block cache.
    pub cache_hits: Counter,
    /// Reads that missed the cache and paid a device read.
    pub cache_misses: Counter,
    /// Writes processed (memstore appends).
    pub writes: Counter,
    /// Simulated read service time (arrival to response), in microseconds.
    pub read_us: Histogram,
    /// Simulated write service time, in microseconds.
    pub write_us: Histogram,
}

impl KvObs {
    /// Registers every series in `registry` under `kv_*` names.
    pub fn register_in(&self, registry: &Registry) {
        registry.register_counter("kv_reads_total", &self.reads);
        registry.register_counter("kv_cache_hits_total", &self.cache_hits);
        registry.register_counter("kv_cache_misses_total", &self.cache_misses);
        registry.register_counter("kv_writes_total", &self.writes);
        registry.register_histogram("kv_read_us", &self.read_us);
        registry.register_histogram("kv_write_us", &self.write_us);
    }
}

#[cfg(test)]
mod tests {
    use wsi_sim::{SimRng, SimTime};

    use super::*;
    use crate::{DataCluster, ServerConfig};

    #[test]
    fn cluster_obs_aggregates_across_servers() {
        let mut c = DataCluster::new(4, 1000, ServerConfig::paper_default(), &SimRng::new(3));
        let obs = KvObs::default();
        c.attach_obs(&obs);
        let mut rng = SimRng::new(9);
        for i in 0..200u64 {
            c.read(rng.below(1000), SimTime::from_us(i * 10));
        }
        c.write(7, SimTime::ZERO, false);
        assert_eq!(obs.reads.get(), 200);
        assert_eq!(obs.writes.get(), 1);
        assert_eq!(obs.cache_hits.get() + obs.cache_misses.get(), 200);
        // Shared handles match the per-server exact stats.
        let (reads, hits): (u64, u64) = c
            .servers()
            .iter()
            .map(|s| (s.stats().reads, s.stats().cache_hits))
            .fold((0, 0), |(r, h), (sr, sh)| (r + sr, h + sh));
        assert_eq!(obs.reads.get(), reads);
        assert_eq!(obs.cache_hits.get(), hits);
        let snap = obs.read_us.snapshot();
        assert_eq!(snap.count, 200);
        assert!(snap.max >= 38_000, "cold reads hit the disk path");
    }

    #[test]
    fn late_attach_syncs_prior_counts() {
        let mut c = DataCluster::new(2, 100, ServerConfig::paper_default(), &SimRng::new(3));
        c.read(1, SimTime::ZERO);
        c.write(2, SimTime::ZERO, true);
        let obs = KvObs::default();
        c.attach_obs(&obs);
        assert_eq!(obs.reads.get(), 1);
        assert_eq!(obs.writes.get(), 1);
        assert_eq!(obs.cache_hits.get() + obs.cache_misses.get(), 1);
    }

    #[test]
    fn registers_under_kv_names() {
        let obs = KvObs::default();
        let registry = Registry::new();
        obs.register_in(&registry);
        obs.reads.inc();
        let snap = registry.snapshot();
        assert_eq!(snap.counters.get("kv_reads_total"), Some(&1));
        assert!(snap.histograms.contains_key("kv_read_us"));
    }
}

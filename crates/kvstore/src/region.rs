//! Region routing: consecutive row ranges mapped to data servers.

use bytes::Bytes;
use wsi_core::Timestamp;
use wsi_sim::{SimRng, SimTime};

use crate::server::{ReadOutcome, RegionServer, ServerConfig};
use crate::table::VersionLookup;

/// Identifier of a region (and, with one region per server, of its server).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RegionId(pub usize);

/// How row identifiers map to regions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Routing {
    /// HBase-native: consecutive row ranges per region. Under the *latest*
    /// distribution this concentrates all fresh traffic on the tail region —
    /// the classic HBase sequential-key hotspot.
    Range,
    /// YCSB-style hashed keys: rows scatter uniformly over regions. This is
    /// what the paper's YCSB workload produces (YCSB key order is hashed),
    /// and the default for the figure experiments.
    Hash,
}

/// The data tier: a table range-partitioned over region servers.
///
/// "It splits groups of consecutive rows of a table into multiple regions,
/// and each region is maintained by a single data server" (§6). Rows
/// `[0, total_rows)` are split evenly; clients route by row id, exactly like
/// an HBase client routes by key through region metadata.
#[derive(Debug)]
pub struct DataCluster {
    servers: Vec<RegionServer>,
    total_rows: u64,
    routing: Routing,
}

impl DataCluster {
    /// Creates `servers` region servers covering `total_rows` rows with
    /// hashed routing (the YCSB default).
    ///
    /// # Panics
    ///
    /// Panics if `servers == 0` or `total_rows == 0`.
    pub fn new(servers: usize, total_rows: u64, config: ServerConfig, rng: &SimRng) -> Self {
        Self::with_routing(servers, total_rows, config, rng, Routing::Hash)
    }

    /// Creates a cluster with an explicit routing policy.
    ///
    /// # Panics
    ///
    /// Panics if `servers == 0` or `total_rows == 0`.
    pub fn with_routing(
        servers: usize,
        total_rows: u64,
        config: ServerConfig,
        rng: &SimRng,
        routing: Routing,
    ) -> Self {
        assert!(servers > 0 && total_rows > 0);
        DataCluster {
            servers: (0..servers)
                .map(|id| RegionServer::new(id, config, rng.fork(1000 + id as u64)))
                .collect(),
            total_rows,
            routing,
        }
    }

    /// The region (= server) responsible for `row`.
    pub fn region_for(&self, row: u64) -> RegionId {
        match self.routing {
            Routing::Range => {
                let row = row.min(self.total_rows - 1);
                RegionId(
                    ((row as u128 * self.servers.len() as u128) / self.total_rows.max(1) as u128)
                        as usize,
                )
            }
            Routing::Hash => {
                // SplitMix64 scatter: uniform server assignment per row.
                let mut z = row.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                RegionId(((z ^ (z >> 31)) % self.servers.len() as u64) as usize)
            }
        }
    }

    /// Times a read of `row` arriving at `now`.
    pub fn read(&mut self, row: u64, now: SimTime) -> ReadOutcome {
        let RegionId(idx) = self.region_for(row);
        self.servers[idx].read(row, now)
    }

    /// Times a write of `row` arriving at `now`; `insert` marks a
    /// new-row write (pays the amortized compaction cost).
    pub fn write(&mut self, row: u64, now: SimTime, insert: bool) -> SimTime {
        let RegionId(idx) = self.region_for(row);
        self.servers[idx].write(row, now, insert)
    }

    /// Stores a version (functional state; timing via [`DataCluster::write`]).
    pub fn apply_put(&mut self, row: u64, writer_start: Timestamp, value: Bytes) {
        let RegionId(idx) = self.region_for(row);
        self.servers[idx].store_mut().put(row, writer_start, value);
    }

    /// Removes an aborted writer's version.
    pub fn apply_remove(&mut self, row: u64, writer_start: Timestamp) {
        let RegionId(idx) = self.region_for(row);
        self.servers[idx].store_mut().remove(row, writer_start);
    }

    /// Snapshot-reads the stored value (functional state).
    pub fn get_visible<L: VersionLookup + ?Sized>(
        &self,
        row: u64,
        reader_start: Timestamp,
        lookup: &L,
    ) -> Option<Bytes> {
        let RegionId(idx) = self.region_for(row);
        self.servers[idx]
            .store()
            .get(row, reader_start, lookup)
            .cloned()
    }

    /// Pre-warms every server's cache with the given rows, in priority
    /// order (most valuable first): models the steady-state cache contents
    /// of a long-running deployment without simulating hours of warm-up.
    pub fn prewarm<I: IntoIterator<Item = u64>>(&mut self, rows: I) {
        for row in rows {
            let RegionId(idx) = self.region_for(row);
            self.servers[idx].prewarm(row);
        }
    }

    /// Attaches one shared [`crate::KvObs`] handle to every server; since
    /// clones share atomics, the handle's series aggregate cluster-wide.
    pub fn attach_obs(&mut self, obs: &crate::KvObs) {
        for server in &mut self.servers {
            server.attach_obs(obs.clone());
        }
    }

    /// Attaches one shared flight-recorder journal to every server; clones
    /// share the underlying rings, so the cluster records a single causal
    /// event stream.
    pub fn attach_journal(&mut self, journal: &wsi_obs::Journal) {
        for server in &mut self.servers {
            server.attach_journal(journal.clone());
        }
    }

    /// Number of servers.
    pub fn server_count(&self) -> usize {
        self.servers.len()
    }

    /// The servers, for metric collection.
    pub fn servers(&self) -> &[RegionServer] {
        &self.servers
    }

    /// Mean cache hit rate across servers.
    pub fn mean_cache_hit_rate(&self) -> f64 {
        let sum: f64 = self.servers.iter().map(RegionServer::cache_hit_rate).sum();
        sum / self.servers.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::VersionFate;

    fn cluster(servers: usize, rows: u64) -> DataCluster {
        DataCluster::new(
            servers,
            rows,
            ServerConfig::paper_default(),
            &SimRng::new(3),
        )
    }

    fn range_cluster(servers: usize, rows: u64) -> DataCluster {
        DataCluster::with_routing(
            servers,
            rows,
            ServerConfig::paper_default(),
            &SimRng::new(3),
            Routing::Range,
        )
    }

    #[test]
    fn range_routing_is_balanced_and_contiguous() {
        let c = range_cluster(25, 1000);
        let mut counts = [0u64; 25];
        let mut last = 0usize;
        for row in 0..1000 {
            let RegionId(idx) = c.region_for(row);
            assert!(idx >= last, "regions cover consecutive rows");
            last = idx;
            counts[idx] += 1;
        }
        assert!(counts.iter().all(|&c| c == 40));
    }

    #[test]
    fn range_routing_clamps_out_of_range_rows() {
        let c = range_cluster(4, 100);
        assert_eq!(c.region_for(99), RegionId(3));
        assert_eq!(c.region_for(10_000), RegionId(3));
    }

    #[test]
    fn hash_routing_scatters_consecutive_rows() {
        let c = cluster(25, 100_000);
        let mut counts = vec![0u64; 25];
        for row in 0..10_000 {
            counts[c.region_for(row).0] += 1;
        }
        // Roughly balanced (10 000 rows over 25 servers ⇒ 400 ± noise)...
        assert!(
            counts.iter().all(|&n| (250..600).contains(&n)),
            "{counts:?}"
        );
        // ...and consecutive rows land on different servers: the tail of a
        // growing key space does not hotspot one region.
        let tail: std::collections::HashSet<usize> =
            (99_900..100_000).map(|r| c.region_for(r).0).collect();
        assert!(
            tail.len() > 10,
            "tail rows spread over {} servers",
            tail.len()
        );
    }

    #[test]
    fn functional_put_get_roundtrip() {
        let mut c = cluster(4, 100);
        c.apply_put(42, Timestamp(1), Bytes::from_static(b"v"));
        let lookup = |s: Timestamp| {
            if s == Timestamp(1) {
                VersionFate::Committed(Timestamp(2))
            } else {
                VersionFate::Pending
            }
        };
        assert_eq!(c.get_visible(42, Timestamp(5), &lookup).unwrap(), "v");
        c.apply_remove(42, Timestamp(1));
        assert!(c.get_visible(42, Timestamp(5), &lookup).is_none());
    }

    #[test]
    fn uniform_load_spreads_over_servers() {
        let mut c = cluster(5, 1000);
        let mut rng = SimRng::new(1);
        for _ in 0..500 {
            c.read(rng.below(1000), SimTime::ZERO);
        }
        for s in c.servers() {
            assert!(s.stats().reads > 50, "server {} starved", s.id);
        }
    }
}

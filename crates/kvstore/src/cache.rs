//! LRU block cache.
//!
//! HBase serves reads from an in-heap block cache; a miss loads an entire
//! HFile block from HDFS — the source of the paper's 38.8 ms random-read
//! latency, "the cost of loading an entire block from HDFS" (§6.2). Rows
//! map to blocks by division: consecutive rows share a block, so scans are
//! cache-friendly and zipfian hot rows pin their blocks.

use std::collections::HashMap;

/// An LRU set of block identifiers with O(log n) operations.
///
/// Recency is tracked with a logical clock: `last_used` per block plus an
/// ordered index from `(last_used, block)` for eviction.
#[derive(Debug, Clone)]
pub struct BlockCache {
    capacity: usize,
    clock: u64,
    last_used: HashMap<u64, u64>,
    by_age: std::collections::BTreeSet<(u64, u64)>,
    hits: u64,
    misses: u64,
}

impl BlockCache {
    /// Creates a cache holding at most `capacity` blocks.
    ///
    /// A zero capacity is allowed and models a cacheless server (every read
    /// misses).
    pub fn new(capacity: usize) -> Self {
        BlockCache {
            capacity,
            clock: 0,
            last_used: HashMap::new(),
            by_age: std::collections::BTreeSet::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Touches `block`, returning `true` on a hit. On a miss the block is
    /// admitted (evicting the least recently used if full).
    pub fn access(&mut self, block: u64) -> bool {
        self.clock += 1;
        if let Some(&prev) = self.last_used.get(&block) {
            self.by_age.remove(&(prev, block));
            self.by_age.insert((self.clock, block));
            self.last_used.insert(block, self.clock);
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if self.capacity == 0 {
            return false;
        }
        if self.last_used.len() >= self.capacity {
            if let Some(&(age, victim)) = self.by_age.iter().next() {
                self.by_age.remove(&(age, victim));
                self.last_used.remove(&victim);
            }
        }
        self.last_used.insert(block, self.clock);
        self.by_age.insert((self.clock, block));
        false
    }

    /// Admits `block` without counting a hit or miss — used to pre-warm the
    /// cache to its steady-state contents before measurement starts.
    pub fn warm(&mut self, block: u64) {
        if self.capacity == 0 || self.last_used.contains_key(&block) {
            return;
        }
        self.clock += 1;
        if self.last_used.len() >= self.capacity {
            if let Some(&(age, victim)) = self.by_age.iter().next() {
                self.by_age.remove(&(age, victim));
                self.last_used.remove(&victim);
            }
        }
        self.last_used.insert(block, self.clock);
        self.by_age.insert((self.clock, block));
    }

    /// Blocks currently resident.
    pub fn len(&self) -> usize {
        self.last_used.len()
    }

    /// Returns `true` if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.last_used.is_empty()
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Lifetime hit rate (0 when unused).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_admit() {
        let mut c = BlockCache::new(2);
        assert!(!c.access(1));
        assert!(c.access(1));
        assert_eq!((c.hits(), c.misses()), (1, 1));
        assert!((c.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = BlockCache::new(2);
        c.access(1);
        c.access(2);
        c.access(1); // 2 is now LRU
        c.access(3); // evicts 2
        assert!(c.access(1));
        assert!(!c.access(2));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn warm_admits_without_counting() {
        let mut c = BlockCache::new(4);
        c.warm(1);
        c.warm(1); // idempotent
        assert_eq!((c.hits(), c.misses()), (0, 0));
        assert!(c.access(1));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn zero_capacity_never_hits() {
        let mut c = BlockCache::new(0);
        assert!(!c.access(1));
        assert!(!c.access(1));
        assert!(c.is_empty());
    }

    #[test]
    fn skewed_access_gets_high_hit_rate() {
        // 90% of accesses to 10 hot blocks, cache of 16: hot set stays
        // resident despite a cold scan mixing in.
        let mut c = BlockCache::new(16);
        let mut cold = 1000u64;
        for i in 0..10_000u64 {
            if i % 10 == 9 {
                cold += 1;
                c.access(cold);
            } else {
                c.access(i % 10);
            }
        }
        assert!(c.hit_rate() > 0.85, "hit rate {}", c.hit_rate());
    }
}

//! Functional multi-version row storage.

use std::collections::BTreeMap;

use bytes::Bytes;
use wsi_core::Timestamp;

/// Fate of a version's writer, as known to the reader's commit-table
/// replica (§2.2: commit timestamps are "replicated on the clients" in the
/// configuration the paper evaluates).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VersionFate {
    /// Writer committed at this timestamp.
    Committed(Timestamp),
    /// Writer is in flight or unknown.
    Pending,
    /// Writer aborted.
    Aborted,
}

/// Resolves a writer's start timestamp to its fate.
pub trait VersionLookup {
    /// Fate of the transaction that started at `writer_start`.
    fn lookup(&self, writer_start: Timestamp) -> VersionFate;
}

impl<F: Fn(Timestamp) -> VersionFate> VersionLookup for F {
    fn lookup(&self, writer_start: Timestamp) -> VersionFate {
        self(writer_start)
    }
}

/// Multi-version storage for one region's rows.
///
/// Each row holds its versions tagged by the writer's start timestamp, as
/// in the lock-free scheme: "the uncommitted data are written directly into
/// the main database with a version equals to the transaction start
/// timestamp" (§2.1/§2.2).
#[derive(Debug, Clone, Default)]
pub struct RegionStore {
    rows: BTreeMap<u64, Vec<(Timestamp, Bytes)>>,
}

impl RegionStore {
    /// Creates empty storage.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes a version of `row` tagged with the writer's start timestamp.
    pub fn put(&mut self, row: u64, writer_start: Timestamp, value: Bytes) {
        let versions = self.rows.entry(row).or_default();
        match versions.binary_search_by_key(&writer_start, |&(ts, _)| ts) {
            Ok(i) => versions[i] = (writer_start, value),
            Err(i) => versions.insert(i, (writer_start, value)),
        }
    }

    /// Removes the version `row@writer_start` (abort cleanup).
    pub fn remove(&mut self, row: u64, writer_start: Timestamp) {
        if let Some(versions) = self.rows.get_mut(&row) {
            if let Ok(i) = versions.binary_search_by_key(&writer_start, |&(ts, _)| ts) {
                versions.remove(i);
            }
            if versions.is_empty() {
                self.rows.remove(&row);
            }
        }
    }

    /// Snapshot read: "the reading transaction skips a particular version if
    /// the transaction that has written it is (i) not committed yet, (ii)
    /// aborted, or (iii) committed with a commit timestamp larger than the
    /// start timestamp" (§2.2). Among visible versions, the one with the
    /// largest commit timestamp wins.
    pub fn get<L: VersionLookup + ?Sized>(
        &self,
        row: u64,
        reader_start: Timestamp,
        lookup: &L,
    ) -> Option<&Bytes> {
        let versions = self.rows.get(&row)?;
        let mut best: Option<(Timestamp, &Bytes)> = None;
        for (writer_start, value) in versions {
            if let VersionFate::Committed(commit_ts) = lookup.lookup(*writer_start) {
                if commit_ts < reader_start && best.is_none_or(|(b, _)| commit_ts > b) {
                    best = Some((commit_ts, value));
                }
            }
        }
        best.map(|(_, v)| v)
    }

    /// Number of rows present.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Total version count (memstore pressure metric).
    pub fn version_count(&self) -> usize {
        self.rows.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn committed(entries: &[(u64, u64)]) -> impl VersionLookup + '_ {
        move |start: Timestamp| {
            entries
                .iter()
                .find(|&&(s, _)| Timestamp(s) == start)
                .map(|&(_, c)| VersionFate::Committed(Timestamp(c)))
                .unwrap_or(VersionFate::Pending)
        }
    }

    #[test]
    fn put_get_visibility() {
        let mut s = RegionStore::new();
        s.put(7, Timestamp(1), Bytes::from_static(b"v1"));
        let lk = committed(&[(1, 2)]);
        assert_eq!(s.get(7, Timestamp(3), &lk).unwrap(), "v1");
        assert!(s.get(7, Timestamp(2), &lk).is_none()); // strict <
        assert!(s.get(8, Timestamp(9), &lk).is_none()); // missing row
    }

    #[test]
    fn pending_versions_invisible() {
        let mut s = RegionStore::new();
        s.put(1, Timestamp(1), Bytes::from_static(b"v"));
        let lk = committed(&[]);
        assert!(s.get(1, Timestamp(100), &lk).is_none());
    }

    #[test]
    fn commit_order_decides_among_versions() {
        let mut s = RegionStore::new();
        s.put(1, Timestamp(1), Bytes::from_static(b"slow")); // commits at 6
        s.put(1, Timestamp(2), Bytes::from_static(b"fast")); // commits at 3
        let lk = committed(&[(1, 6), (2, 3)]);
        assert_eq!(s.get(1, Timestamp(10), &lk).unwrap(), "slow");
        assert_eq!(s.get(1, Timestamp(5), &lk).unwrap(), "fast");
    }

    #[test]
    fn remove_cleans_up() {
        let mut s = RegionStore::new();
        s.put(1, Timestamp(1), Bytes::from_static(b"v"));
        s.put(1, Timestamp(2), Bytes::from_static(b"w"));
        s.remove(1, Timestamp(1));
        assert_eq!(s.version_count(), 1);
        s.remove(1, Timestamp(2));
        assert_eq!(s.row_count(), 0);
        // Removing a non-existent version is a no-op.
        s.remove(1, Timestamp(9));
    }

    #[test]
    fn same_writer_overwrites_own_version() {
        let mut s = RegionStore::new();
        s.put(1, Timestamp(1), Bytes::from_static(b"a"));
        s.put(1, Timestamp(1), Bytes::from_static(b"b"));
        assert_eq!(s.version_count(), 1);
        let lk = committed(&[(1, 2)]);
        assert_eq!(s.get(1, Timestamp(5), &lk).unwrap(), "b");
    }
}

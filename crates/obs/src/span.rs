//! Sampled transaction-lifecycle spans.
//!
//! A [`TxnSpan`] carries one microsecond stamp per [`TxnPhase`] so a single
//! sampled transaction shows where its latency went: begin → first read /
//! first write → conflict check → WAL append → quorum ack → visible. The
//! [`SpanRecorder`] hands out spans for 1-in-N transactions (an atomic
//! ticket, no locks on the skip path) and keeps the most recent finished
//! spans in a bounded ring, dumpable as JSON.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// Lifecycle phases a transaction passes through, in commit-path order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum TxnPhase {
    /// Start timestamp issued; snapshot established.
    Begin = 0,
    /// First key read through the snapshot.
    FirstRead = 1,
    /// First write buffered.
    FirstWrite = 2,
    /// Conflict check against the `lastCommit` table finished.
    ConflictCheck = 3,
    /// Commit record appended to the WAL buffer.
    WalAppend = 4,
    /// WAL flush acknowledged by an ack-quorum of replicas.
    QuorumAck = 5,
    /// Writes published to the MVCC store (visible to later snapshots).
    Visible = 6,
}

/// Number of [`TxnPhase`] variants (the length of a span's stamp array).
pub const PHASE_COUNT: usize = 7;

/// All phases in commit-path order, paired with their JSON/display names.
pub(crate) const PHASE_NAMES: [&str; PHASE_COUNT] = [
    "begin",
    "first_read",
    "first_write",
    "conflict_check",
    "wal_append",
    "quorum_ack",
    "visible",
];

/// How a traced transaction ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanOutcome {
    /// Still running (a span that was never finished).
    InFlight,
    /// Committed with writes.
    Committed,
    /// Committed without writes (no conflict check or WAL work needed).
    ReadOnly,
    /// Aborted — by the conflict check, `T_max` eviction, or the client.
    Aborted,
}

impl SpanOutcome {
    fn as_str(self) -> &'static str {
        match self {
            SpanOutcome::InFlight => "in_flight",
            SpanOutcome::Committed => "committed",
            SpanOutcome::ReadOnly => "read_only",
            SpanOutcome::Aborted => "aborted",
        }
    }
}

/// One sampled transaction's lifecycle: a microsecond stamp per phase.
///
/// Stamps are absolute times on the owning store's clock (microseconds since
/// store open); per-phase durations are differences between consecutive
/// stamped phases. A phase a transaction never reached stays unstamped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxnSpan {
    /// The transaction's start timestamp (its snapshot identity).
    pub txn_id: u64,
    /// Commit timestamp, once assigned.
    pub commit_ts: Option<u64>,
    /// How the transaction ended.
    pub outcome: SpanOutcome,
    stamps: [Option<u64>; PHASE_COUNT],
}

impl TxnSpan {
    /// Creates a span for `txn_id` with no phases stamped.
    pub fn new(txn_id: u64) -> Self {
        TxnSpan {
            txn_id,
            commit_ts: None,
            outcome: SpanOutcome::InFlight,
            stamps: [None; PHASE_COUNT],
        }
    }

    /// Stamps `phase` at `now_us` if it has not been stamped yet (first
    /// stamp wins, so "first read" really is the first).
    #[inline]
    pub fn stamp(&mut self, phase: TxnPhase, now_us: u64) {
        let slot = &mut self.stamps[phase as usize];
        if slot.is_none() {
            *slot = Some(now_us);
        }
    }

    /// The stamp for `phase`, if the transaction reached it.
    pub fn phase_us(&self, phase: TxnPhase) -> Option<u64> {
        self.stamps[phase as usize]
    }

    /// Microseconds from the begin stamp to the latest stamped phase.
    pub fn total_us(&self) -> u64 {
        let begin = self.stamps[TxnPhase::Begin as usize].unwrap_or(0);
        let last = self.stamps.iter().flatten().max().copied().unwrap_or(begin);
        last.saturating_sub(begin)
    }

    fn render_json(&self, out: &mut String) {
        out.push_str(&format!(
            "{{\"txn_id\": {}, \"commit_ts\": {}, \"outcome\": \"{}\", \"total_us\": {}, \
             \"phases\": {{",
            self.txn_id,
            self.commit_ts
                .map(|ts| ts.to_string())
                .unwrap_or_else(|| "null".to_string()),
            self.outcome.as_str(),
            self.total_us(),
        ));
        let mut first = true;
        for (i, stamp) in self.stamps.iter().enumerate() {
            if let Some(us) = stamp {
                if !first {
                    out.push_str(", ");
                }
                first = false;
                out.push_str(&format!("\"{}\": {us}", PHASE_NAMES[i]));
            }
        }
        out.push_str("}}");
    }
}

struct RecorderInner {
    sample_every: u64,
    ticket: AtomicU64,
    ring: Mutex<VecDeque<TxnSpan>>,
    capacity: usize,
}

/// Hands out [`TxnSpan`]s for 1-in-N transactions and retains the most
/// recent finished spans.
///
/// The skip path (the other N−1 transactions) is a single relaxed
/// `fetch_add`; only sampled transactions ever touch the ring lock, and only
/// twice (once when finished). Cloning shares the recorder.
#[derive(Clone)]
pub struct SpanRecorder {
    inner: Arc<RecorderInner>,
}

impl SpanRecorder {
    /// Creates a recorder sampling one in `sample_every` transactions
    /// (`sample_every = 1` traces everything, `0` is treated as `1`) and
    /// keeping the latest `capacity` finished spans.
    pub fn new(sample_every: u64, capacity: usize) -> Self {
        SpanRecorder {
            inner: Arc::new(RecorderInner {
                sample_every: sample_every.max(1),
                ticket: AtomicU64::new(0),
                ring: Mutex::new(VecDeque::with_capacity(capacity.min(1024))),
                capacity: capacity.max(1),
            }),
        }
    }

    /// Returns a span for this transaction if it falls on the sampling
    /// grid, stamped with [`TxnPhase::Begin`] at `now_us`.
    #[inline]
    pub fn try_sample(&self, txn_id: u64, now_us: u64) -> Option<TxnSpan> {
        let ticket = self.inner.ticket.fetch_add(1, Ordering::Relaxed);
        if !ticket.is_multiple_of(self.inner.sample_every) {
            return None;
        }
        let mut span = TxnSpan::new(txn_id);
        span.stamp(TxnPhase::Begin, now_us);
        Some(span)
    }

    /// Files a finished span into the ring, evicting the oldest at capacity.
    pub fn finish(&self, span: TxnSpan) {
        let mut ring = self.inner.ring.lock();
        if ring.len() == self.inner.capacity {
            ring.pop_front();
        }
        ring.push_back(span);
    }

    /// The retained spans, oldest first.
    pub fn traces(&self) -> Vec<TxnSpan> {
        self.inner.ring.lock().iter().cloned().collect()
    }

    /// Number of retained spans.
    pub fn len(&self) -> usize {
        self.inner.ring.lock().len()
    }

    /// Whether no spans have been retained yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders the retained spans as a JSON array (oldest first), one
    /// object per span with its stamped phases.
    pub fn dump_json(&self) -> String {
        let ring = self.inner.ring.lock();
        let mut out = String::from("[");
        for (i, span) in ring.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n  ");
            span.render_json(&mut out);
        }
        if !ring.is_empty() {
            out.push('\n');
        }
        out.push_str("]\n");
        out
    }
}

impl std::fmt::Debug for SpanRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanRecorder")
            .field("sample_every", &self.inner.sample_every)
            .field("retained", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_one_in_n() {
        let rec = SpanRecorder::new(4, 16);
        let sampled = (0..16).filter(|&i| rec.try_sample(i, 0).is_some()).count();
        assert_eq!(sampled, 4);
    }

    #[test]
    fn first_stamp_wins() {
        let mut span = TxnSpan::new(7);
        span.stamp(TxnPhase::FirstRead, 10);
        span.stamp(TxnPhase::FirstRead, 99);
        assert_eq!(span.phase_us(TxnPhase::FirstRead), Some(10));
    }

    #[test]
    fn total_spans_begin_to_last_phase() {
        let mut span = TxnSpan::new(1);
        span.stamp(TxnPhase::Begin, 100);
        span.stamp(TxnPhase::ConflictCheck, 140);
        span.stamp(TxnPhase::Visible, 190);
        assert_eq!(span.total_us(), 90);
    }

    #[test]
    fn ring_evicts_oldest() {
        let rec = SpanRecorder::new(1, 2);
        for id in 0..3 {
            rec.finish(TxnSpan::new(id));
        }
        let ids: Vec<u64> = rec.traces().iter().map(|s| s.txn_id).collect();
        assert_eq!(ids, vec![1, 2]);
    }

    #[test]
    fn dump_json_lists_phases_and_outcome() {
        let rec = SpanRecorder::new(1, 4);
        let mut span = rec.try_sample(42, 1000).unwrap();
        span.stamp(TxnPhase::ConflictCheck, 1040);
        span.commit_ts = Some(43);
        span.outcome = SpanOutcome::Committed;
        rec.finish(span);
        let json = rec.dump_json();
        assert!(json.contains("\"txn_id\": 42"));
        assert!(json.contains("\"conflict_check\": 1040"));
        assert!(json.contains("\"outcome\": \"committed\""));
        assert!(json.contains("\"commit_ts\": 43"));
    }
}

//! The metric registry: a name → handle map with lock-free recording.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::{Counter, Gauge, Histogram, Snapshot};

#[derive(Default)]
struct RegistryInner {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

/// A collection of named metrics.
///
/// Registration (`counter`/`gauge`/`histogram`/`register_*`) takes a short
/// lock and happens at setup time; the returned handles are `Arc`-backed, so
/// the hot path records straight into shared atomics with the registry out
/// of the picture. Cloning a `Registry` shares the collection.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Arc<RegistryInner>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter named `name`, creating it at zero on first use.
    pub fn counter(&self, name: &str) -> Counter {
        self.inner
            .counters
            .lock()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Returns the gauge named `name`, creating it at zero on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.inner
            .gauges
            .lock()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Returns the histogram named `name`, creating it empty on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.inner
            .histograms
            .lock()
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Registers an externally created counter under `name` (a handle clone;
    /// subsequent updates through either handle are visible to both). Lets a
    /// component own its counters while still appearing in the registry's
    /// exposition.
    pub fn register_counter(&self, name: &str, counter: &Counter) {
        self.inner
            .counters
            .lock()
            .insert(name.to_string(), counter.clone());
    }

    /// Registers an externally created gauge under `name`.
    pub fn register_gauge(&self, name: &str, gauge: &Gauge) {
        self.inner
            .gauges
            .lock()
            .insert(name.to_string(), gauge.clone());
    }

    /// Registers an externally created histogram under `name`.
    pub fn register_histogram(&self, name: &str, histogram: &Histogram) {
        self.inner
            .histograms
            .lock()
            .insert(name.to_string(), histogram.clone());
    }

    /// Takes a point-in-time snapshot of every registered metric.
    ///
    /// Concurrent recording continues while the snapshot is taken; each
    /// individual metric is read atomically, the set as a whole is not — the
    /// usual scrape semantics.
    pub fn snapshot(&self) -> Snapshot {
        let counters = self
            .inner
            .counters
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let gauges = self
            .inner
            .gauges
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let histograms = self
            .inner
            .histograms
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("counters", &self.inner.counters.lock().len())
            .field("gauges", &self.inner.gauges.lock().len())
            .field("histograms", &self.inner.histograms.lock().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_same_metric() {
        let r = Registry::new();
        r.counter("a").add(3);
        r.counter("a").add(4);
        assert_eq!(r.counter("a").get(), 7);
    }

    #[test]
    fn registered_external_handles_share_state() {
        let r = Registry::new();
        let mine = Counter::new();
        r.register_counter("ext", &mine);
        mine.add(9);
        assert_eq!(r.snapshot().counters["ext"], 9);
    }

    #[test]
    fn snapshot_covers_all_kinds() {
        let r = Registry::new();
        r.counter("c").inc();
        r.gauge("g").set(5);
        r.histogram("h").record(100);
        let s = r.snapshot();
        assert_eq!(s.counters["c"], 1);
        assert_eq!(s.gauges["g"], 5);
        assert_eq!(s.histograms["h"].count, 1);
    }
}

//! Latency histograms: lock-free log₂ buckets, plus the exact-sample
//! variant used by the deterministic simulator.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::metric::{thread_slot, PaddedU64, SHARDS};

/// Number of buckets in a [`Histogram`].
///
/// Bucket `0` holds the value `0`; bucket `i` (for `1 <= i < BUCKETS-1`)
/// holds values in `[2^(i-1), 2^i - 1]`; the last bucket is unbounded above.
/// With microsecond samples that spans sub-µs to ~146 years — every latency
/// this workspace can produce, at ≤ 2× relative resolution.
pub const BUCKETS: usize = 64;

/// One shard of a histogram: a full bucket array plus count/sum/min/max,
/// all plain relaxed atomics. `min`/`max` use `fetch_min`/`fetch_max`, so a
/// record is wait-free.
#[derive(Debug)]
struct HistShard {
    buckets: [AtomicU64; BUCKETS],
    count: PaddedU64,
    sum: PaddedU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl HistShard {
    fn new() -> Self {
        HistShard {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: PaddedU64::default(),
            sum: PaddedU64::default(),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// Maps a value to its bucket index. Total and monotone: every `u64` has
/// exactly one bucket.
#[inline]
pub(crate) fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        ((64 - value.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// Inclusive `[lower, upper]` value range of bucket `i` (`upper` is `None`
/// for the unbounded last bucket).
pub(crate) fn bucket_bounds(i: usize) -> (u64, Option<u64>) {
    match i {
        0 => (0, Some(0)),
        _ if i == BUCKETS - 1 => (1u64 << (BUCKETS - 2), None),
        _ => (1u64 << (i - 1), Some((1u64 << i) - 1)),
    }
}

/// A lock-free, zero-allocation latency histogram with log₂ buckets.
///
/// Recording is a handful of relaxed atomic operations on a per-thread
/// shard; reading aggregates the shards into a [`HistogramSnapshot`].
/// Cloning shares the underlying storage (a clone is a second handle).
#[derive(Clone)]
pub struct Histogram {
    shards: Arc<Vec<HistShard>>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            shards: Arc::new((0..SHARDS).map(|_| HistShard::new()).collect()),
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample (conventionally microseconds, but any unit works —
    /// the histogram is unit-agnostic).
    #[inline]
    pub fn record(&self, value: u64) {
        let shard = &self.shards[thread_slot()];
        shard.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        shard.count.0.fetch_add(1, Ordering::Relaxed);
        shard.sum.0.fetch_add(value, Ordering::Relaxed);
        shard.min.fetch_min(value, Ordering::Relaxed);
        shard.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Aggregates every shard into a point-in-time snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut snap = HistogramSnapshot::empty();
        for shard in self.shards.iter() {
            let count = shard.count.0.load(Ordering::Relaxed);
            if count == 0 {
                continue;
            }
            snap.count += count;
            snap.sum = snap.sum.wrapping_add(shard.sum.0.load(Ordering::Relaxed));
            snap.min = snap.min.min(shard.min.load(Ordering::Relaxed));
            snap.max = snap.max.max(shard.max.load(Ordering::Relaxed));
            for (i, b) in shard.buckets.iter().enumerate() {
                snap.buckets[i] += b.load(Ordering::Relaxed);
            }
        }
        if snap.count == 0 {
            snap.min = 0;
        }
        snap
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.count.0.load(Ordering::Relaxed))
            .sum()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &snap.count)
            .field("mean", &snap.mean())
            .field("p99", &snap.quantile(0.99))
            .finish()
    }
}

/// An owned, mergeable aggregate of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`BUCKETS`] for the bucket layout).
    pub buckets: [u64; BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all sample values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot (the merge identity).
    pub fn empty() -> Self {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Inclusive `[lower, upper]` bounds of bucket `i`; `upper` is `None`
    /// for the unbounded last bucket.
    pub fn bucket_bounds(i: usize) -> (u64, Option<u64>) {
        bucket_bounds(i)
    }

    /// The bucket a value falls into.
    pub fn bucket_of(value: u64) -> usize {
        bucket_index(value)
    }

    /// Merges `other` into `self`. Associative and commutative, with
    /// [`HistogramSnapshot::empty`] as identity — shards, threads, and
    /// processes can be combined in any order.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        // min/max only mean anything when that side has samples: an empty
        // snapshot's min may be the `u64::MAX` sentinel or the normalized 0,
        // and neither must leak into the aggregate.
        if other.count > 0 {
            self.min = if self.count == 0 {
                other.min
            } else {
                self.min.min(other.min)
            };
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        // Wrapping, to match the recorder's atomic `fetch_add`: the sum of
        // extreme samples may exceed `u64`, and a wrapped aggregate must
        // merge to the same wrapped aggregate.
        self.sum = self.sum.wrapping_add(other.sum);
    }

    /// The interval between an `earlier` cumulative snapshot of the same
    /// histogram and this one: bucket-wise difference, so interval
    /// quantiles come straight from [`HistogramSnapshot::quantile`] on the
    /// result. Cumulative `min`/`max` cannot be de-accumulated, so the
    /// interval's are approximated by the bounds of its outermost nonempty
    /// buckets — the same ≤ 2× relative error the bucket layout already
    /// carries.
    pub fn delta_since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut delta = HistogramSnapshot::empty();
        let mut lo = None;
        let mut hi = None;
        for i in 0..BUCKETS {
            let n = self.buckets[i].saturating_sub(earlier.buckets[i]);
            delta.buckets[i] = n;
            if n > 0 {
                lo.get_or_insert(i);
                hi = Some(i);
            }
        }
        delta.count = self.count.saturating_sub(earlier.count);
        delta.sum = self.sum.wrapping_sub(earlier.sum);
        if let (Some(lo), Some(hi)) = (lo, hi) {
            delta.min = bucket_bounds(lo).0;
            delta.max = bucket_bounds(hi).1.unwrap_or(self.max);
        }
        delta
    }

    /// Normalizes the empty-snapshot `min` sentinel for exposition.
    pub(crate) fn min_for_display(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimated quantile (`0.0 ..= 1.0`) by nearest rank over the buckets,
    /// linearly interpolated inside the selected bucket and clamped to the
    /// recorded `[min, max]`. Error is bounded by the bucket width (≤ 2×
    /// relative), and the first/last buckets answer exactly via min/max.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // Nearest-rank, matching ExactHistogram::percentile.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                let (lower, upper) = bucket_bounds(i);
                let upper = upper.unwrap_or(self.max.max(lower)) as f64;
                let lower = lower as f64;
                // Position of the rank inside this bucket, in (0, 1].
                let frac = (rank - seen) as f64 / n as f64;
                let est = lower + (upper - lower) * frac;
                return est.clamp(self.min as f64, self.max as f64);
            }
            seen += n;
        }
        self.max as f64
    }
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

/// An exact latency distribution: every sample kept, percentiles computed
/// by nearest rank over the sorted samples.
///
/// This is the measurement type the deterministic simulator uses (a few
/// hundred thousand samples per run, 8 bytes each), ported here so the
/// simulator and the live [`Histogram`] share one percentile definition:
/// `rank = ceil(p · n)`, clamped to `[1, n]`, 1-indexed into the sorted
/// samples. Not thread-safe by design — recording needs `&mut self`.
#[derive(Debug, Clone, Default)]
pub struct ExactHistogram {
    samples: Vec<u64>,
    sorted: bool,
}

impl ExactHistogram {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.samples.push(value);
        self.sorted = false;
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let sum: u128 = self.samples.iter().map(|&v| v as u128).sum();
        sum as f64 / self.samples.len() as f64
    }

    /// Exact percentile (`0.0 ..= 1.0`) by the nearest-rank method (0 when
    /// empty).
    pub fn percentile(&mut self, p: f64) -> u64 {
        if self.samples.is_empty() {
            return 0;
        }
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
        let p = p.clamp(0.0, 1.0);
        let rank = ((p * self.samples.len() as f64).ceil() as usize).clamp(1, self.samples.len());
        self.samples[rank - 1]
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.samples.iter().copied().max().unwrap_or(0)
    }

    /// Folds every sample into a bucketed [`HistogramSnapshot`] — the bridge
    /// from exact simulator data to the shared exposition pipeline.
    pub fn to_snapshot(&self) -> HistogramSnapshot {
        let mut snap = HistogramSnapshot::empty();
        for &v in &self.samples {
            snap.buckets[bucket_index(v)] += 1;
            snap.count += 1;
            snap.sum = snap.sum.wrapping_add(v);
            snap.min = snap.min.min(v);
            snap.max = snap.max.max(v);
        }
        if snap.count == 0 {
            snap.min = 0;
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_total_and_monotone() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        let mut prev = 0;
        for shift in 0..64 {
            let i = bucket_index(1u64 << shift);
            assert!(i >= prev);
            prev = i;
        }
    }

    #[test]
    fn bounds_contain_their_values() {
        for v in [0u64, 1, 2, 3, 7, 8, 1000, 1 << 40, u64::MAX] {
            let i = bucket_index(v);
            let (lo, hi) = bucket_bounds(i);
            assert!(v >= lo, "value {v} below bucket {i} lower bound {lo}");
            if let Some(hi) = hi {
                assert!(v <= hi, "value {v} above bucket {i} upper bound {hi}");
            }
        }
    }

    #[test]
    fn snapshot_aggregates_and_quantiles_bound_truth() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 1000);
        assert_eq!(snap.min, 1);
        assert_eq!(snap.max, 1000);
        assert_eq!(snap.sum, 500_500);
        let p50 = snap.quantile(0.5);
        // Log2 buckets: the answer is within one bucket (2×) of the truth.
        assert!((250.0..=1000.0).contains(&p50), "p50 estimate {p50}");
        assert_eq!(snap.quantile(1.0), 1000.0);
    }

    #[test]
    fn empty_histogram_is_zeroes() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.quantile(0.99), 0.0);
        assert_eq!(snap.mean(), 0.0);
        assert_eq!(snap.min_for_display(), 0);
    }

    #[test]
    fn merge_identity_and_commutativity() {
        let a = {
            let h = Histogram::new();
            for v in [1u64, 5, 9, 1000] {
                h.record(v);
            }
            h.snapshot()
        };
        let b = {
            let h = Histogram::new();
            for v in [2u64, 4, 1 << 30] {
                h.record(v);
            }
            h.snapshot()
        };
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        let mut with_id = a.clone();
        with_id.merge(&HistogramSnapshot::empty());
        assert_eq!(with_id, a);
    }

    #[test]
    fn exact_percentiles_match_seed_semantics() {
        let mut e = ExactHistogram::new();
        for v in [5u64, 1, 3, 2, 4] {
            e.record(v);
        }
        assert_eq!(e.count(), 5);
        assert!((e.mean() - 3.0).abs() < 1e-9);
        assert_eq!(e.percentile(0.5), 3);
        assert_eq!(e.percentile(0.0), 1);
        assert_eq!(e.percentile(1.0), 5);
        assert_eq!(e.max(), 5);
        // Recording after a percentile re-sorts.
        e.record(0);
        assert_eq!(e.percentile(0.0), 0);
    }

    #[test]
    fn exact_to_snapshot_agrees_on_count_sum_bounds() {
        let mut e = ExactHistogram::new();
        for v in [7u64, 100, 100_000] {
            e.record(v);
        }
        let snap = e.to_snapshot();
        assert_eq!(snap.count, 3);
        assert_eq!(snap.sum, 100_107);
        assert_eq!((snap.min, snap.max), (7, 100_000));
    }
}

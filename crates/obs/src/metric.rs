//! Scalar metrics: sharded counters and gauges.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Number of independent cells a [`Counter`] or [`crate::Histogram`] is
/// sharded over. Each cell lives on its own cache line, so threads mapped to
/// different slots never contend on an increment.
pub(crate) const SHARDS: usize = 16;

static NEXT_THREAD_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Stable per-thread shard index, assigned round-robin on first use.
    static THREAD_SLOT: usize = NEXT_THREAD_SLOT.fetch_add(1, Ordering::Relaxed) % SHARDS;
}

/// The shard this thread records into.
#[inline]
pub(crate) fn thread_slot() -> usize {
    THREAD_SLOT.with(|s| *s)
}

/// One cache-line-padded atomic cell.
#[derive(Debug, Default)]
#[repr(align(64))]
pub(crate) struct PaddedU64(pub(crate) AtomicU64);

/// A monotonically increasing counter, sharded per thread.
///
/// Cloning is cheap and *shares* the underlying cells — a clone is a second
/// handle onto the same counter, which is how one counter can be registered
/// in a [`crate::Registry`] while the hot path holds its own handle.
#[derive(Clone, Default)]
pub struct Counter {
    cells: Arc<[PaddedU64; SHARDS]>,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cells[thread_slot()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n` (used only for the rare decision-overturn paths; the
    /// exposed value stays non-negative as long as every `sub` undoes an
    /// earlier `add`).
    #[inline]
    pub fn sub(&self, n: u64) {
        self.cells[thread_slot()].0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Aggregated value across all shards.
    pub fn get(&self) -> u64 {
        self.cells
            .iter()
            .map(|c| c.0.load(Ordering::Relaxed))
            .fold(0u64, u64::wrapping_add)
    }

    /// Overwrites the aggregate value — a recovery-time operation used to
    /// resume counters from persisted state; never called on the hot path.
    pub fn set(&self, value: u64) {
        for (i, cell) in self.cells.iter().enumerate() {
            cell.0
                .store(if i == 0 { value } else { 0 }, Ordering::Relaxed);
        }
    }

    /// A new counter holding the current value of this one, with no shared
    /// state — the deep copy used by value-semantics embedders.
    pub fn detached_copy(&self) -> Counter {
        let fresh = Counter::new();
        fresh.set(self.get());
        fresh
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Counter").field(&self.get()).finish()
    }
}

/// A settable scalar (point-in-time value, not a rate).
///
/// Cloning shares the underlying cell, like [`Counter`].
#[derive(Clone, Default)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, value: u64) {
        self.cell.store(value, Ordering::Relaxed);
    }

    /// Reads the value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Gauge").field(&self.get()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        c.sub(2);
        assert_eq!(c.get(), 40);
    }

    #[test]
    fn clones_share_detached_copies_do_not() {
        let c = Counter::new();
        let shared = c.clone();
        shared.add(5);
        assert_eq!(c.get(), 5);
        let detached = c.detached_copy();
        detached.add(10);
        assert_eq!(c.get(), 5);
        assert_eq!(detached.get(), 15);
    }

    #[test]
    fn set_overwrites_every_shard() {
        let c = Counter::new();
        c.add(100);
        c.set(7);
        assert_eq!(c.get(), 7);
    }

    #[test]
    fn gauge_set_get() {
        let g = Gauge::new();
        g.set(9);
        assert_eq!(g.get(), 9);
        g.set(3);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn concurrent_increments_all_land() {
        let c = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
    }
}

//! The flight recorder: an always-on, lock-free causal event journal.
//!
//! Aggregate counters answer *how many* aborts happened; they cannot answer
//! "why did transaction 4217 abort, who was the culprit, and what was the
//! timeline?". The journal closes that gap: every transaction lifecycle
//! event — begin, per-row conflict-check verdict, WAL flush, publish, GC and
//! epoch advance, and abort with its full reason **plus culprit
//! attribution** — is written into a fixed-capacity ring of per-shard
//! seqlock slots, cheap enough to leave on in production and replayable into
//! a forensic timeline after the fact.
//!
//! # Memory model
//!
//! * **Per-shard rings.** Events are written into one of [`JOURNAL_SHARDS`]
//!   rings chosen by the caller's thread slot (the same assignment the
//!   sharded counters use), so concurrent writers on different threads never
//!   contend on a slot or bounce a head pointer's cache line.
//! * **Seqlock slots.** A slot is eight atomic words: a stamp plus the
//!   event's fields. A writer claims a ring index with one `fetch_add` on
//!   the shard head, stamps the slot *odd* (writing), stores the payload,
//!   then stamps it *even* encoding the claimed index. Readers accept a slot
//!   only if the stamp reads even, encodes the index being scanned, and is
//!   unchanged after the payload loads — torn or overwritten slots are
//!   silently dropped, never misread. All of this is safe Rust: every word
//!   is an [`AtomicU64`], so there is no undefined behaviour to manage, only
//!   staleness.
//! * **Lamport stamps.** An event's `seqno` is derived from the ring index
//!   the writer already claimed — `index + 1 + stamp_base` — so the common
//!   path pays exactly one atomic RMW and touches no shared cache line.
//!   Commit-class events (commit, publish, overturn) push their stamp into
//!   one shared high-water mark, and events that *name* a commit (a
//!   conflict verdict, an abort cause) bump the shard's `stamp_base` past
//!   that mark before stamping: the culprit's commit always carries a
//!   smaller stamp than the verdict citing it. [`Journal::snapshot`] merges
//!   the rings by stamp (ties — causally concurrent events — broken by
//!   transaction id). Within a shard stamps are unique and strictly
//!   increasing whenever the shard has a single writer thread, the common
//!   deployment. An earlier design used a single global `fetch_add` per
//!   event for a total order; the coherence traffic on that one line cost
//!   more than the rest of the event write combined, and the total order
//!   bought nothing the causal order does not — cross-shard ordering is
//!   only ever *consumed* across a commit edge. Wall-clock timestamps
//!   (`ts_us`) are attached for human consumption only — replay comparison
//!   and ordering never consult them.
//! * **Drop-oldest.** When a ring wraps, the oldest events are overwritten;
//!   [`Journal::dropped`] reports how many. Nothing blocks, nothing
//!   allocates, and a reader can always reconstruct the most recent
//!   `capacity × shards` events.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::metric::thread_slot;

/// Number of independent event rings. Smaller than the counter shard count:
/// each ring is hundreds of kilobytes, and four rings already de-contend
/// the stamp words on the core counts this workspace targets.
pub const JOURNAL_SHARDS: usize = 4;

/// Default per-shard ring capacity (events). 4096 × 4 shards × 64 bytes per
/// slot ≈ 1 MiB resident for a 16k-event window. Kept modest on purpose:
/// the rings are written on every transaction, and a larger window streams
/// more cache lines through the writers' L1/L2, evicting the store's hot
/// data — `trace_overhead` showed the eviction pressure, not the slot
/// stores, dominating past this size.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 4096;

/// Atomic words per slot: stamp, seqno, ts_us, txn, kind, a, b, c.
const SLOT_WORDS: usize = 8;

/// What caused an abort, with enough payload to attribute the culprit.
///
/// `committed_at` / `*_commit_ts` fields carry the **commit timestamp of the
/// committed transaction that caused the conflict** — the join key
/// [`Journal::explain_abort`] uses to find the culprit's own events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cause {
    /// First-committer-wins write-write conflict (SI): `row` was committed
    /// at `committed_at` after the victim's snapshot.
    WriteWrite {
        /// Conflicted row identifier.
        row: u64,
        /// Commit timestamp of the culprit writer.
        committed_at: u64,
    },
    /// Read-write conflict (WSI): a row the victim read was committed at
    /// `committed_at` inside the victim's lifetime.
    ReadWrite {
        /// Conflicted row identifier.
        row: u64,
        /// Commit timestamp of the culprit writer.
        committed_at: u64,
    },
    /// Bounded-table pessimistic abort (Algorithm 3): the victim began
    /// before `t_max`, so evicted state could hide a conflict.
    Tmax {
        /// The table's eviction bound at decision time.
        t_max: u64,
    },
    /// Client-requested rollback.
    Client,
    /// A decided commit overturned because the WAL lost its write quorum.
    QuorumLoss,
    /// SSI dangerous structure: the victim is the pivot of consecutive
    /// rw-antidependencies. The payload names the commit timestamps of the
    /// two edge partners (0 when the partner is the still-active reader of
    /// an in-edge, which has no commit timestamp yet).
    Pivot {
        /// Commit timestamp of the in-edge partner (`T_in -rw-> victim`).
        in_commit_ts: u64,
        /// Commit timestamp of the out-edge partner (`victim -rw-> T_out`).
        out_commit_ts: u64,
    },
}

impl Cause {
    /// Commit timestamps of the committed transactions this cause blames
    /// (the `explain_abort` join keys). Zero entries mean "no culprit"
    /// (client rollbacks, `T_max`, quorum loss).
    pub fn culprit_commit_ts(&self) -> Vec<u64> {
        match *self {
            Cause::WriteWrite { committed_at, .. } | Cause::ReadWrite { committed_at, .. } => {
                vec![committed_at]
            }
            Cause::Pivot {
                in_commit_ts,
                out_commit_ts,
            } => [in_commit_ts, out_commit_ts]
                .into_iter()
                .filter(|&t| t != 0)
                .collect(),
            Cause::Tmax { .. } | Cause::Client | Cause::QuorumLoss => Vec::new(),
        }
    }

    /// Short label for rendering.
    pub fn label(&self) -> &'static str {
        match self {
            Cause::WriteWrite { .. } => "write-write conflict",
            Cause::ReadWrite { .. } => "read-write conflict",
            Cause::Tmax { .. } => "t_max exceeded",
            Cause::Client => "client rollback",
            Cause::QuorumLoss => "wal quorum loss",
            Cause::Pivot { .. } => "ssi dangerous structure",
        }
    }
}

/// One structured lifecycle event. `txn` is the start timestamp (raw) of
/// the transaction the event belongs to, or 0 for engine-wide events
/// (WAL flushes, GC, epoch advances).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventData {
    /// Transaction began (its snapshot was fixed).
    Begin,
    /// One row's conflict-check verdict inside a commit decision.
    /// `conflict` carries the culprit's commit timestamp when the row
    /// failed the check; `None` means the row passed.
    CheckRow {
        /// Row identifier checked.
        row: u64,
        /// `Some(commit_ts)` when this row conflicted, `None` if it passed.
        conflict: Option<u64>,
    },
    /// Commit decided (the oracle admitted the transaction).
    Commit {
        /// Commit timestamp issued.
        commit_ts: u64,
    },
    /// Read-only commit (never conflict-checked, §5.1).
    ReadOnlyCommit,
    /// The transaction aborted, with full cause and culprit payload.
    Abort(Cause),
    /// A WAL flush completed: `records` appended, acknowledged by `acked`
    /// replicas (the quorum ack).
    WalFlush {
        /// Records in the flushed group.
        records: u64,
        /// Replicas that acknowledged the flush.
        acked: u64,
    },
    /// The transaction's versions became visible to snapshots.
    Publish {
        /// Commit timestamp stamped onto the versions.
        commit_ts: u64,
    },
    /// A decided commit was overturned after a WAL quorum loss (the
    /// engine-side twin of an [`Cause::QuorumLoss`] abort).
    Overturn {
        /// Commit timestamp that was decided and then rolled back.
        commit_ts: u64,
    },
    /// A GC sweep removed superseded/aborted versions.
    GcSweep {
        /// Versions removed.
        versions: u64,
        /// Keys removed entirely.
        keys: u64,
    },
    /// The reclamation epoch advanced and limbo versions were freed.
    EpochAdvance {
        /// New global epoch.
        epoch: u64,
        /// Versions freed by this advance.
        freed: u64,
    },
    /// One retry attempt of a retrying workload wrapper gave up on this
    /// attempt (the adjacent [`EventData::Abort`] event carries the cause).
    Retry {
        /// 1-based attempt index that failed.
        attempt: u64,
    },
    /// A region server served a read.
    ServerRead {
        /// Row identifier.
        row: u64,
        /// Whether the block cache absorbed it.
        cache_hit: bool,
    },
    /// A region server applied a write.
    ServerWrite {
        /// Row identifier.
        row: u64,
    },
    /// The batched oracle sealed an epoch: `size` commit requests left the
    /// intake ring and entered conflict planning as one batch.
    EpochSeal {
        /// Monotonic epoch number (per oracle).
        epoch: u64,
        /// Requests sealed into the batch.
        size: u64,
    },
    /// The batched oracle published an epoch's decisions atomically:
    /// `committed` winners became visible together, `aborted` losers were
    /// resolved in the same step. Intra-batch victims' `CheckRow` events
    /// carry the winning slot's real commit timestamp, so `explain_abort`
    /// joins them to their culprits exactly as on the per-decision paths.
    EpochPublish {
        /// Epoch number (matches the preceding [`EventData::EpochSeal`]).
        epoch: u64,
        /// Requests admitted by the batch's conflict analysis.
        committed: u64,
        /// Requests aborted by the batch's conflict analysis.
        aborted: u64,
    },
}

impl EventData {
    /// Packs into (kind-word, a, b, c). The kind word's low byte is the
    /// variant, bits 8.. the sub-code (conflict flag / cause code).
    fn encode(self) -> (u64, u64, u64, u64) {
        match self {
            EventData::Begin => (0, 0, 0, 0),
            EventData::CheckRow { row, conflict } => match conflict {
                None => (1, row, 0, 0),
                Some(ts) => (1 | (1 << 8), row, ts, 0),
            },
            EventData::Commit { commit_ts } => (2, commit_ts, 0, 0),
            EventData::ReadOnlyCommit => (3, 0, 0, 0),
            EventData::Abort(cause) => {
                let (code, a, b) = match cause {
                    Cause::WriteWrite { row, committed_at } => (1u64, row, committed_at),
                    Cause::ReadWrite { row, committed_at } => (2, row, committed_at),
                    Cause::Tmax { t_max } => (3, t_max, 0),
                    Cause::Client => (4, 0, 0),
                    Cause::QuorumLoss => (5, 0, 0),
                    Cause::Pivot {
                        in_commit_ts,
                        out_commit_ts,
                    } => (6, in_commit_ts, out_commit_ts),
                };
                (4 | (code << 8), a, b, 0)
            }
            EventData::WalFlush { records, acked } => (5, records, acked, 0),
            EventData::Publish { commit_ts } => (6, commit_ts, 0, 0),
            EventData::Overturn { commit_ts } => (7, commit_ts, 0, 0),
            EventData::GcSweep { versions, keys } => (8, versions, keys, 0),
            EventData::EpochAdvance { epoch, freed } => (9, epoch, freed, 0),
            EventData::Retry { attempt } => (10, attempt, 0, 0),
            EventData::ServerRead { row, cache_hit } => (11, row, cache_hit as u64, 0),
            EventData::ServerWrite { row } => (12, row, 0, 0),
            EventData::EpochSeal { epoch, size } => (13, epoch, size, 0),
            EventData::EpochPublish {
                epoch,
                committed,
                aborted,
            } => (14, epoch, committed, aborted),
        }
    }

    /// Unpacks an encoded (kind-word, a, b, c). `None` for unknown kinds
    /// (a torn slot that slipped past the stamp check cannot panic a
    /// reader).
    fn decode(kind: u64, a: u64, b: u64, c: u64) -> Option<EventData> {
        let sub = kind >> 8;
        Some(match kind & 0xFF {
            0 => EventData::Begin,
            1 => EventData::CheckRow {
                row: a,
                conflict: (sub == 1).then_some(b),
            },
            2 => EventData::Commit { commit_ts: a },
            3 => EventData::ReadOnlyCommit,
            4 => EventData::Abort(match sub {
                1 => Cause::WriteWrite {
                    row: a,
                    committed_at: b,
                },
                2 => Cause::ReadWrite {
                    row: a,
                    committed_at: b,
                },
                3 => Cause::Tmax { t_max: a },
                4 => Cause::Client,
                5 => Cause::QuorumLoss,
                6 => Cause::Pivot {
                    in_commit_ts: a,
                    out_commit_ts: b,
                },
                _ => return None,
            }),
            5 => EventData::WalFlush {
                records: a,
                acked: b,
            },
            6 => EventData::Publish { commit_ts: a },
            7 => EventData::Overturn { commit_ts: a },
            8 => EventData::GcSweep {
                versions: a,
                keys: b,
            },
            9 => EventData::EpochAdvance { epoch: a, freed: b },
            10 => EventData::Retry { attempt: a },
            11 => EventData::ServerRead {
                row: a,
                cache_hit: b != 0,
            },
            12 => EventData::ServerWrite { row: a },
            13 => EventData::EpochSeal { epoch: a, size: b },
            14 => EventData::EpochPublish {
                epoch: a,
                committed: b,
                aborted: c,
            },
            _ => return None,
        })
    }

    /// Whether this event pushes its stamp into the commit high-water mark.
    /// Commit-class events are the only ones other transactions' events can
    /// causally depend on: a conflict verdict or abort names a *committed*
    /// transaction, never an aborted or in-flight one.
    fn publishes(&self) -> bool {
        matches!(
            self,
            EventData::Commit { .. } | EventData::Publish { .. } | EventData::Overturn { .. }
        )
    }

    /// Whether this event *names* another transaction's commit — a conflict
    /// verdict, an abort cause, an overturned commit. Only these must stamp
    /// above the commit high-water mark (so the culprit's commit sorts
    /// before the verdict that cites it); everything else keeps the
    /// hint-free fast path.
    fn observes(&self) -> bool {
        matches!(
            self,
            EventData::CheckRow {
                conflict: Some(_),
                ..
            } | EventData::Abort(_)
                | EventData::Overturn { .. }
        )
    }

    /// Short name for exposition (Chrome trace event names, rendered
    /// timelines).
    pub fn name(&self) -> &'static str {
        match self {
            EventData::Begin => "begin",
            EventData::CheckRow { .. } => "check_row",
            EventData::Commit { .. } => "commit",
            EventData::ReadOnlyCommit => "read_only_commit",
            EventData::Abort(_) => "abort",
            EventData::WalFlush { .. } => "wal_flush",
            EventData::Publish { .. } => "publish",
            EventData::Overturn { .. } => "overturn",
            EventData::GcSweep { .. } => "gc_sweep",
            EventData::EpochAdvance { .. } => "epoch_advance",
            EventData::Retry { .. } => "retry",
            EventData::ServerRead { .. } => "server_read",
            EventData::ServerWrite { .. } => "server_write",
            EventData::EpochSeal { .. } => "epoch_seal",
            EventData::EpochPublish { .. } => "epoch_publish",
        }
    }
}

/// One recorded journal event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Lamport stamp: unique and strictly increasing within a shard, and
    /// every event stamps higher than any commit it could have observed.
    /// Equal stamps on different shards are causally concurrent; ties are
    /// broken by `txn` when merging.
    pub seqno: u64,
    /// Microseconds since the journal was created, **coarse**: the clock is
    /// sampled once every `TS_REFRESH_INTERVAL` events, so nearby events
    /// share a stamp (order them by `seqno`, never by time). Human
    /// consumption only; excluded from [`Event::replay_key`].
    pub ts_us: u64,
    /// Owning transaction's start timestamp (raw), or 0 for engine-wide
    /// events.
    pub txn: u64,
    /// The structured payload.
    pub data: EventData,
}

impl Event {
    /// Everything about the event except wall-clock time: the identity a
    /// deterministic replay must reproduce exactly.
    pub fn replay_key(&self) -> (u64, u64, EventData) {
        (self.seqno, self.txn, self.data)
    }

    /// One human-readable line.
    pub fn render(&self) -> String {
        let body = match self.data {
            EventData::Begin => "begin".to_string(),
            EventData::CheckRow { row, conflict } => match conflict {
                None => format!("check row {row}: ok"),
                Some(ts) => format!("check row {row}: CONFLICT with commit@{ts}"),
            },
            EventData::Commit { commit_ts } => format!("commit @{commit_ts}"),
            EventData::ReadOnlyCommit => "read-only commit".to_string(),
            EventData::Abort(cause) => match cause {
                Cause::WriteWrite { row, committed_at } => {
                    format!("ABORT write-write: row {row} committed@{committed_at}")
                }
                Cause::ReadWrite { row, committed_at } => {
                    format!("ABORT read-write: row {row} committed@{committed_at}")
                }
                Cause::Tmax { t_max } => format!("ABORT t_max exceeded (t_max={t_max})"),
                Cause::Client => "abort (client rollback)".to_string(),
                Cause::QuorumLoss => "ABORT wal quorum loss".to_string(),
                Cause::Pivot {
                    in_commit_ts,
                    out_commit_ts,
                } => format!(
                    "ABORT ssi pivot: in-edge commit@{in_commit_ts}, \
                     out-edge commit@{out_commit_ts}"
                ),
            },
            EventData::WalFlush { records, acked } => {
                format!("wal flush: {records} records, {acked} acks")
            }
            EventData::Publish { commit_ts } => format!("publish @{commit_ts}"),
            EventData::Overturn { commit_ts } => format!("OVERTURN commit @{commit_ts}"),
            EventData::GcSweep { versions, keys } => {
                format!("gc sweep: {versions} versions, {keys} keys")
            }
            EventData::EpochAdvance { epoch, freed } => {
                format!("epoch advance -> {epoch} ({freed} freed)")
            }
            EventData::Retry { attempt } => format!("retry: attempt {attempt} failed"),
            EventData::ServerRead { row, cache_hit } => {
                format!(
                    "server read row {row} ({})",
                    if cache_hit { "cache hit" } else { "disk" }
                )
            }
            EventData::ServerWrite { row } => format!("server write row {row}"),
            EventData::EpochSeal { epoch, size } => {
                format!("epoch {epoch} sealed ({size} requests)")
            }
            EventData::EpochPublish {
                epoch,
                committed,
                aborted,
            } => format!("epoch {epoch} published ({committed} committed, {aborted} aborted)"),
        };
        if self.txn == 0 {
            format!("[{:>8}] {:>10}us            {body}", self.seqno, self.ts_us)
        } else {
            format!(
                "[{:>8}] {:>10}us txn {:<6} {body}",
                self.seqno, self.ts_us, self.txn
            )
        }
    }
}

/// One ring of seqlock slots. Cache-line aligned: a bare `Shard` is small
/// enough that two shards would otherwise pack into one line and turn each
/// thread's `head` bump into an invalidation of its neighbour's ring
/// pointer.
#[repr(align(64))]
struct Shard {
    /// Next ring index to claim (monotonic; slot = index % capacity).
    head: AtomicU64,
    /// Lamport stamp base: `seqno = index + 1 + stamp_base`. Bumped (rarely)
    /// when another shard's published commit stamp overtakes this shard, so
    /// the common path derives its stamp from the `head` bump it already
    /// paid for instead of a second atomic RMW.
    stamp_base: AtomicU64,
    /// Cached wall-clock, refreshed every [`TS_REFRESH_INTERVAL`] events
    /// written to this shard.
    coarse_ts_us: AtomicU64,
    /// `capacity × SLOT_WORDS` atomic words.
    slots: Vec<AtomicU64>,
}

impl Shard {
    fn new(capacity: usize) -> Shard {
        Shard {
            head: AtomicU64::new(0),
            stamp_base: AtomicU64::new(0),
            coarse_ts_us: AtomicU64::new(0),
            slots: (0..capacity * SLOT_WORDS)
                .map(|_| AtomicU64::new(0))
                .collect(),
        }
    }

    fn capacity(&self) -> u64 {
        (self.slots.len() / SLOT_WORDS) as u64
    }

    /// Writes one event under the seqlock protocol. The wall clock is
    /// sampled once per [`TS_REFRESH_INTERVAL`] events on this shard and
    /// cached — `ts_us` is coarse by design (see [`Event::ts_us`]).
    fn write(&self, idx: u64, epoch: &Instant, seqno: u64, txn: u64, data: EventData) {
        let (kind, a, b, c) = data.encode();
        let ts_us = if idx.is_multiple_of(TS_REFRESH_INTERVAL) {
            let now = epoch.elapsed().as_micros() as u64;
            self.coarse_ts_us.store(now, Ordering::Relaxed);
            now
        } else {
            self.coarse_ts_us.load(Ordering::Relaxed)
        };
        let base = (idx % self.capacity()) as usize * SLOT_WORDS;
        let slot: &[AtomicU64; SLOT_WORDS] = self.slots[base..base + SLOT_WORDS]
            .try_into()
            .expect("slot window is exactly SLOT_WORDS");
        // Odd stamp: writing. Encodes the claimed index so a racing reader
        // of an older generation can tell the slot moved on.
        slot[0].store(idx * 2 + 1, Ordering::Release);
        slot[1].store(seqno, Ordering::Relaxed);
        slot[2].store(ts_us, Ordering::Relaxed);
        slot[3].store(txn, Ordering::Relaxed);
        slot[4].store(kind, Ordering::Relaxed);
        slot[5].store(a, Ordering::Relaxed);
        slot[6].store(b, Ordering::Relaxed);
        slot[7].store(c, Ordering::Relaxed);
        // Even stamp: done, still encoding the index.
        slot[0].store(idx * 2 + 2, Ordering::Release);
    }

    /// Reads the live window, dropping torn and overwritten slots.
    fn read_into(&self, out: &mut Vec<Event>) {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.capacity();
        let first = head.saturating_sub(cap);
        for idx in first..head {
            let base = (idx % cap) as usize * SLOT_WORDS;
            let stamp = &self.slots[base];
            let want = idx * 2 + 2;
            if stamp.load(Ordering::Acquire) != want {
                continue; // being written, or already overwritten
            }
            let seqno = self.slots[base + 1].load(Ordering::Relaxed);
            let ts_us = self.slots[base + 2].load(Ordering::Relaxed);
            let txn = self.slots[base + 3].load(Ordering::Relaxed);
            let kind = self.slots[base + 4].load(Ordering::Relaxed);
            let a = self.slots[base + 5].load(Ordering::Relaxed);
            let b = self.slots[base + 6].load(Ordering::Relaxed);
            let c = self.slots[base + 7].load(Ordering::Relaxed);
            if stamp.load(Ordering::Acquire) != want {
                continue; // overwritten mid-read: drop the torn payload
            }
            if let Some(data) = EventData::decode(kind, a, b, c) {
                out.push(Event {
                    seqno,
                    ts_us,
                    txn,
                    data,
                });
            }
        }
    }
}

/// The commit high-water mark on its own cache line. Commit-class events
/// `fetch_max` their stamp into it; every other event only *loads* it, so
/// the line stays in shared state in every core's cache and the common
/// path pays a local read instead of a coherence miss. The padding keeps
/// those rare writes from invalidating the read-mostly fields around it.
#[repr(align(64))]
struct Published {
    /// Largest stamp any commit-class event has carried.
    stamp: AtomicU64,
}

/// How many events share one wall-clock sample. `ts_us` is exposition-only
/// (excluded from [`Event::replay_key`]), so microsecond-exact stamps are
/// not worth a vDSO clock read per event.
const TS_REFRESH_INTERVAL: u64 = 64;

struct JournalInner {
    shards: Vec<Shard>,
    /// Commit-stamp high-water mark, cache-line isolated.
    published: Published,
    /// Wall-clock epoch for `ts_us` (exposition only).
    epoch: Instant,
}

/// The flight recorder. Cloning shares the same rings (like [`Counter`]).
///
/// [`Counter`]: crate::Counter
///
/// # Example
///
/// ```
/// use wsi_obs::{Cause, EventData, Journal};
///
/// let j = Journal::new();
/// j.record(7, EventData::Begin);
/// j.record(7, EventData::Abort(Cause::WriteWrite { row: 3, committed_at: 6 }));
/// let events = j.events_for(7);
/// assert_eq!(events.len(), 2);
/// assert!(matches!(events[1].data, EventData::Abort(_)));
/// ```
#[derive(Clone)]
pub struct Journal {
    inner: Arc<JournalInner>,
}

impl Journal {
    /// A journal with the default per-shard capacity
    /// ([`DEFAULT_JOURNAL_CAPACITY`]).
    pub fn new() -> Journal {
        Journal::with_capacity(DEFAULT_JOURNAL_CAPACITY)
    }

    /// A journal whose rings hold `per_shard` events each (rounded up to at
    /// least 8).
    pub fn with_capacity(per_shard: usize) -> Journal {
        let cap = per_shard.max(8);
        Journal {
            inner: Arc::new(JournalInner {
                shards: (0..JOURNAL_SHARDS).map(|_| Shard::new(cap)).collect(),
                published: Published {
                    stamp: AtomicU64::new(0),
                },
                epoch: Instant::now(),
            }),
        }
    }

    /// Records one event. Lock-free, and on the common path entirely
    /// shard-local: one `fetch_add` on the shard head (the Lamport stamp
    /// derives from it), the slot stores, and nothing else. Events that
    /// *name* another transaction's commit additionally read the commit
    /// high-water mark and catch the shard's stamp base up past it, and
    /// commit-class events `fetch_max` their own stamp into that mark —
    /// see the module docs on Lamport stamps.
    pub fn record(&self, txn: u64, data: EventData) {
        let shard = &self.inner.shards[thread_slot() % JOURNAL_SHARDS];
        let idx = shard.head.fetch_add(1, Ordering::Relaxed);
        let mut seqno = idx + 1 + shard.stamp_base.load(Ordering::Relaxed);
        if data.observes() {
            let hint = self.inner.published.stamp.load(Ordering::Relaxed);
            if seqno <= hint {
                shard.stamp_base.fetch_max(hint - idx, Ordering::Relaxed);
                seqno = idx + 1 + shard.stamp_base.load(Ordering::Relaxed);
            }
        }
        if data.publishes() {
            self.inner
                .published
                .stamp
                .fetch_max(seqno, Ordering::Relaxed);
        }
        shard.write(idx, &self.inner.epoch, seqno, txn, data);
    }

    /// Total events ever recorded (including any since overwritten).
    pub fn recorded(&self) -> u64 {
        self.inner
            .shards
            .iter()
            .map(|s| s.head.load(Ordering::Relaxed))
            .sum()
    }

    /// Events lost to ring wrap (drop-oldest), summed over shards.
    pub fn dropped(&self) -> u64 {
        self.inner
            .shards
            .iter()
            .map(|s| s.head.load(Ordering::Relaxed).saturating_sub(s.capacity()))
            .sum()
    }

    /// All live events, merged across shards in causal (`seqno`) order,
    /// with ties — causally concurrent events on different shards — broken
    /// by transaction id for a deterministic merge. Concurrent writers may
    /// tear a handful of slots; those are dropped, never misread.
    pub fn snapshot(&self) -> Vec<Event> {
        let mut out = Vec::new();
        for shard in &self.inner.shards {
            shard.read_into(&mut out);
        }
        out.sort_unstable_by_key(|e| (e.seqno, e.txn));
        out
    }

    /// Live events belonging to `txn`, in order.
    pub fn events_for(&self, txn: u64) -> Vec<Event> {
        let mut out = self.snapshot();
        out.retain(|e| e.txn == txn);
        out
    }

    /// The last `n` live events, in order.
    pub fn tail(&self, n: usize) -> Vec<Event> {
        let out = self.snapshot();
        let skip = out.len().saturating_sub(n);
        out[skip..].to_vec()
    }

    /// The last `n` live events rendered one per line (for panic messages
    /// and crash dumps).
    pub fn render_tail(&self, n: usize) -> String {
        let mut s = String::new();
        for event in self.tail(n) {
            s.push_str(&event.render());
            s.push('\n');
        }
        if self.dropped() > 0 {
            s.push_str(&format!("({} older events dropped)\n", self.dropped()));
        }
        s
    }

    /// Joins the victim's and culprit's event streams into one causal
    /// timeline. `None` if no abort event for `txn` is live in the rings.
    pub fn explain_abort(&self, txn: u64) -> Option<AbortExplanation> {
        let events = self.snapshot();
        let cause = events
            .iter()
            .rev()
            .find_map(|e| match (e.txn == txn, e.data) {
                (true, EventData::Abort(cause)) => Some(cause),
                _ => None,
            })?;
        // Join: each culprit commit timestamp names the committed
        // transaction whose commit/publish events carry it.
        let culprit_ts = cause.culprit_commit_ts();
        let mut culprits: Vec<u64> = Vec::new();
        for &ts in &culprit_ts {
            if let Some(c) = events.iter().find_map(|e| match e.data {
                EventData::Commit { commit_ts } if commit_ts == ts && e.txn != 0 => Some(e.txn),
                _ => None,
            }) {
                if !culprits.contains(&c) {
                    culprits.push(c);
                }
            }
        }
        let timeline: Vec<Event> = events
            .into_iter()
            .filter(|e| e.txn == txn || culprits.contains(&e.txn))
            .collect();
        Some(AbortExplanation {
            victim: txn,
            cause,
            culprits,
            timeline,
        })
    }

    /// Renders the live window in the Chrome `trace_event` JSON format
    /// (load the output in `chrome://tracing` or Perfetto). Transactions
    /// appear as async `b`/`e` spans keyed by start timestamp; every event
    /// is also an instant with its payload in `args`.
    pub fn chrome_trace_json(&self) -> String {
        let mut s = String::from("{\"traceEvents\":[");
        let mut first = true;
        for e in self.snapshot() {
            let (kind, a, b, c) = e.data.encode();
            let _ = c;
            // Async span delimiters for transaction lifetimes.
            let span = match e.data {
                EventData::Begin => Some("b"),
                EventData::Commit { .. } | EventData::ReadOnlyCommit | EventData::Abort(_) => {
                    Some("e")
                }
                _ => None,
            };
            if let Some(ph) = span {
                if e.txn != 0 {
                    if !first {
                        s.push(',');
                    }
                    first = false;
                    s.push_str(&format!(
                        "{{\"name\":\"txn\",\"cat\":\"txn\",\"ph\":\"{ph}\",\
                         \"id\":{},\"ts\":{},\"pid\":1,\"tid\":1}}",
                        e.txn, e.ts_us
                    ));
                }
            }
            if !first {
                s.push(',');
            }
            first = false;
            s.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"journal\",\"ph\":\"i\",\"s\":\"t\",\
                 \"ts\":{},\"pid\":1,\"tid\":{},\"args\":{{\"seqno\":{},\"txn\":{},\
                 \"kind\":{},\"a\":{},\"b\":{}}}}}",
                e.data.name(),
                e.ts_us,
                e.txn.min(u32::MAX as u64),
                e.seqno,
                e.txn,
                kind,
                a,
                b,
            ));
        }
        s.push_str("]}");
        s
    }
}

impl Default for Journal {
    fn default() -> Self {
        Journal::new()
    }
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("recorded", &self.recorded())
            .field("dropped", &self.dropped())
            .finish()
    }
}

/// The forensic report [`Journal::explain_abort`] produces: the abort's
/// cause, the committed transactions it blames, and the merged causal
/// timeline of victim and culprits.
#[derive(Debug, Clone)]
pub struct AbortExplanation {
    /// The aborted transaction (start timestamp, raw).
    pub victim: u64,
    /// Why it aborted, with culprit payload.
    pub cause: Cause,
    /// Start timestamps of the committed transactions attributed as
    /// culprits (resolved from the cause's commit timestamps; empty when
    /// the cause names no committed culprit or its events aged out of the
    /// ring).
    pub culprits: Vec<u64>,
    /// Victim and culprit events merged in global causal (`seqno`) order.
    pub timeline: Vec<Event>,
}

impl AbortExplanation {
    /// The full report as human-readable text.
    pub fn render(&self) -> String {
        let mut s = format!(
            "abort forensics for txn {}: {}\n",
            self.victim,
            self.cause.label()
        );
        if self.culprits.is_empty() {
            s.push_str("culprits: none attributed\n");
        } else {
            s.push_str(&format!("culprits: {:?}\n", self.culprits));
        }
        s.push_str("timeline:\n");
        for e in &self.timeline {
            let marker = if e.txn == self.victim {
                "victim "
            } else if self.culprits.contains(&e.txn) {
                "culprit"
            } else {
                "       "
            };
            s.push_str(&format!("  {marker} {}\n", e.render()));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_round_trip_through_the_slots() {
        let j = Journal::new();
        let samples = [
            (0, EventData::Begin),
            (
                7,
                EventData::CheckRow {
                    row: 42,
                    conflict: None,
                },
            ),
            (
                7,
                EventData::CheckRow {
                    row: 43,
                    conflict: Some(99),
                },
            ),
            (7, EventData::Commit { commit_ts: 100 }),
            (8, EventData::ReadOnlyCommit),
            (
                9,
                EventData::Abort(Cause::WriteWrite {
                    row: 1,
                    committed_at: 55,
                }),
            ),
            (
                9,
                EventData::Abort(Cause::ReadWrite {
                    row: 2,
                    committed_at: 56,
                }),
            ),
            (9, EventData::Abort(Cause::Tmax { t_max: 12 })),
            (9, EventData::Abort(Cause::Client)),
            (9, EventData::Abort(Cause::QuorumLoss)),
            (
                9,
                EventData::Abort(Cause::Pivot {
                    in_commit_ts: 3,
                    out_commit_ts: 4,
                }),
            ),
            (
                0,
                EventData::WalFlush {
                    records: 5,
                    acked: 3,
                },
            ),
            (7, EventData::Publish { commit_ts: 100 }),
            (7, EventData::Overturn { commit_ts: 100 }),
            (
                0,
                EventData::GcSweep {
                    versions: 10,
                    keys: 2,
                },
            ),
            (0, EventData::EpochAdvance { epoch: 4, freed: 9 }),
            (9, EventData::Retry { attempt: 2 }),
            (
                0,
                EventData::ServerRead {
                    row: 5,
                    cache_hit: true,
                },
            ),
            (0, EventData::ServerWrite { row: 6 }),
            (0, EventData::EpochSeal { epoch: 3, size: 8 }),
            (
                0,
                EventData::EpochPublish {
                    epoch: 3,
                    committed: 6,
                    aborted: 2,
                },
            ),
        ];
        for &(txn, data) in &samples {
            j.record(txn, data);
        }
        let events = j.snapshot();
        assert_eq!(events.len(), samples.len());
        for (event, &(txn, data)) in events.iter().zip(&samples) {
            assert_eq!(event.txn, txn);
            assert_eq!(event.data, data);
        }
        // Lamport stamps from a single thread land on one shard: unique,
        // strictly increasing, starting at 1.
        for (i, event) in events.iter().enumerate() {
            assert_eq!(event.seqno, i as u64 + 1);
        }
        assert_eq!(j.dropped(), 0);
        assert_eq!(j.recorded(), samples.len() as u64);
    }

    #[test]
    fn ring_wrap_drops_oldest_and_counts_them() {
        let j = Journal::with_capacity(8);
        // A single thread writes to one shard: capacity 8 keeps the last 8.
        for i in 0..100u64 {
            j.record(i, EventData::Begin);
        }
        let events = j.snapshot();
        assert_eq!(events.len(), 8);
        assert_eq!(events.first().unwrap().txn, 92);
        assert_eq!(events.last().unwrap().txn, 99);
        assert_eq!(j.dropped(), 92);
        assert_eq!(j.recorded(), 100);
    }

    #[test]
    fn explain_abort_joins_victim_and_culprit() {
        let j = Journal::new();
        j.record(10, EventData::Begin);
        j.record(11, EventData::Begin);
        j.record(
            10,
            EventData::CheckRow {
                row: 1,
                conflict: None,
            },
        );
        j.record(10, EventData::Commit { commit_ts: 20 });
        j.record(10, EventData::Publish { commit_ts: 20 });
        j.record(
            11,
            EventData::CheckRow {
                row: 1,
                conflict: Some(20),
            },
        );
        j.record(
            11,
            EventData::Abort(Cause::ReadWrite {
                row: 1,
                committed_at: 20,
            }),
        );
        let explanation = j.explain_abort(11).expect("abort event is live");
        assert_eq!(explanation.victim, 11);
        assert_eq!(explanation.culprits, vec![10]);
        assert!(matches!(
            explanation.cause,
            Cause::ReadWrite {
                row: 1,
                committed_at: 20
            }
        ));
        // Timeline carries both streams in seqno order.
        assert_eq!(explanation.timeline.len(), 7);
        assert!(explanation
            .timeline
            .windows(2)
            .all(|w| w[0].seqno < w[1].seqno));
        let text = explanation.render();
        assert!(text.contains("read-write conflict"));
        assert!(text.contains("victim"));
        assert!(text.contains("culprit"));
        // No abort recorded for txn 10.
        assert!(j.explain_abort(10).is_none());
    }

    #[test]
    fn explain_abort_resolves_both_pivot_edges() {
        let j = Journal::new();
        j.record(1, EventData::Begin);
        j.record(2, EventData::Begin);
        j.record(3, EventData::Begin);
        j.record(1, EventData::Commit { commit_ts: 4 });
        j.record(2, EventData::Commit { commit_ts: 5 });
        j.record(
            3,
            EventData::Abort(Cause::Pivot {
                in_commit_ts: 4,
                out_commit_ts: 5,
            }),
        );
        let explanation = j.explain_abort(3).unwrap();
        assert_eq!(explanation.culprits, vec![1, 2]);
        assert_eq!(explanation.timeline.len(), 6);
    }

    #[test]
    fn concurrent_writers_never_produce_garbage() {
        let j = Journal::with_capacity(64);
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let j = j.clone();
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        j.record(t + 1, EventData::Commit { commit_ts: i });
                    }
                });
            }
        });
        // Whatever survives the wrap decodes cleanly and comes out in merge
        // order. Equal stamps on different shards are concurrent events, so
        // strictness holds only for the full (seqno, txn) key.
        let events = j.snapshot();
        assert!(!events.is_empty());
        for event in &events {
            assert!((1..=8).contains(&event.txn));
            assert!(matches!(event.data, EventData::Commit { .. }));
        }
        assert!(events
            .windows(2)
            .all(|w| (w[0].seqno, w[0].txn) < (w[1].seqno, w[1].txn)));
        assert_eq!(j.recorded(), 80_000);
    }

    #[test]
    fn chrome_trace_shape() {
        let j = Journal::new();
        j.record(5, EventData::Begin);
        j.record(5, EventData::Commit { commit_ts: 6 });
        j.record(
            0,
            EventData::WalFlush {
                records: 1,
                acked: 3,
            },
        );
        let trace = j.chrome_trace_json();
        assert!(trace.starts_with("{\"traceEvents\":["));
        assert!(trace.ends_with("]}"));
        assert!(trace.contains("\"ph\":\"b\""));
        assert!(trace.contains("\"ph\":\"e\""));
        assert!(trace.contains("\"ph\":\"i\""));
        assert!(trace.contains("\"name\":\"wal_flush\""));
    }

    #[test]
    fn tail_returns_the_most_recent_events() {
        let j = Journal::new();
        for i in 0..20u64 {
            j.record(i, EventData::Begin);
        }
        let tail = j.tail(5);
        assert_eq!(tail.len(), 5);
        assert_eq!(tail[0].txn, 15);
        let text = j.render_tail(3);
        assert_eq!(text.lines().count(), 3);
    }
}

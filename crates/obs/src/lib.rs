//! Observability substrate for the `writesnap` workspace.
//!
//! The paper's evaluation (§6.3, Appendix A) rests on knowing *where*
//! commit-path time goes: how many `lastCommit` items each conflict check
//! loads (WSI reads ≈ 2× SI's), how many commits share each WAL flush (the
//! batching factor), and what fraction of reads the block cache absorbs.
//! This crate is the shared measurement layer every runtime crate reports
//! through:
//!
//! * [`Counter`] / [`Gauge`] — atomic scalars. Counters are sharded across
//!   cache-line-padded cells indexed by a per-thread slot, so concurrent
//!   increments from the commit path never bounce one cache line; reads
//!   aggregate the shards.
//! * [`Histogram`] — fixed-bucket log₂-scale latency histogram: zero
//!   allocation on the hot path, per-thread sharding, lock-free recording.
//!   [`HistogramSnapshot`] supports merge (associative, commutative) and
//!   interpolated quantiles.
//! * [`ExactHistogram`] — the exact-percentile variant (samples kept in
//!   full) for the deterministic simulator, sharing the same percentile
//!   conventions so simulator figures and live metrics agree on definitions.
//! * [`Registry`] — a name → metric map. Registration takes a lock once at
//!   setup; recording touches only the `Arc`'d atomics.
//! * [`SpanRecorder`] / [`TxnSpan`] — a sampled transaction-lifecycle
//!   tracer stamping each phase (begin → reads/writes → conflict check →
//!   WAL append → quorum ack → visible), dumpable as JSON.
//! * [`Journal`] — the flight recorder: an always-on, lock-free ring of
//!   structured lifecycle events (begin, per-row conflict-check verdicts,
//!   WAL flush, publish, GC/epoch advance, and aborts with culprit
//!   attribution), with [`Journal::explain_abort`] forensics and a Chrome
//!   `trace_event` exporter.
//! * [`Rollup`] — windowed time-series rollups: per-interval counter
//!   deltas and histogram-delta latency percentiles from consecutive
//!   registry snapshots.
//! * [`Snapshot`] — point-in-time exposition: [`Snapshot::render_prometheus`]
//!   (text format, parseable back via [`Snapshot::parse_prometheus`]) and
//!   [`Snapshot::render_json`].
//!
//! # Example
//!
//! ```
//! use wsi_obs::Registry;
//!
//! let registry = Registry::new();
//! let commits = registry.counter("commits_total");
//! let latency = registry.histogram("commit_us");
//!
//! commits.inc();
//! latency.record(180);
//!
//! let snap = registry.snapshot();
//! assert_eq!(snap.counters["commits_total"], 1);
//! let text = snap.render_prometheus();
//! let parsed = wsi_obs::Snapshot::parse_prometheus(&text).unwrap();
//! assert_eq!(parsed, snap);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

mod expo;
mod hist;
mod journal;
mod metric;
mod registry;
mod rollup;
mod span;

pub use expo::{ParseError, Snapshot};
pub use hist::{ExactHistogram, Histogram, HistogramSnapshot, BUCKETS};
pub use journal::{
    AbortExplanation, Cause, Event, EventData, Journal, DEFAULT_JOURNAL_CAPACITY, JOURNAL_SHARDS,
};
pub use metric::{Counter, Gauge};
pub use registry::Registry;
pub use rollup::{Rollup, Window};
pub use span::{SpanOutcome, SpanRecorder, TxnPhase, TxnSpan, PHASE_COUNT};

/// Takes a point-in-time [`Snapshot`] of every metric in `registry`.
///
/// Convenience free function mirroring [`Registry::snapshot`].
pub fn snapshot(registry: &Registry) -> Snapshot {
    registry.snapshot()
}

/// Renders every metric in `registry` in the Prometheus text format.
///
/// Convenience free function: `registry.snapshot().render_prometheus()`.
pub fn render_prometheus(registry: &Registry) -> String {
    registry.snapshot().render_prometheus()
}

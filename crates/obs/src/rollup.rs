//! Windowed time-series rollups over registry snapshots.
//!
//! Cumulative counters and histograms answer "since process start"; SLO
//! work needs "over the last interval". A [`Rollup`] keeps a bounded ring
//! of interval windows, each the *delta* between two consecutive cumulative
//! [`Snapshot`]s: counter differences and bucket-wise histogram differences
//! (so interval latency percentiles come from the same interpolation as the
//! cumulative ones — [`crate::HistogramSnapshot::quantile`]). Feed it a
//! snapshot per scrape tick and read back per-interval throughput, abort
//! rate, and p50/p99/p999 without any per-call-site bucket math.

use std::collections::{BTreeMap, VecDeque};

use parking_lot::Mutex;

use crate::expo::Snapshot;
use crate::hist::HistogramSnapshot;

/// One finished interval: deltas between two consecutive snapshots.
#[derive(Debug, Clone)]
pub struct Window {
    /// Interval start, microseconds (caller's clock).
    pub start_us: u64,
    /// Interval end, microseconds (caller's clock).
    pub end_us: u64,
    /// Counter increments over the interval.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values at the interval's end (gauges are levels, not flows).
    pub gauges: BTreeMap<String, u64>,
    /// Interval histograms (bucket-wise deltas).
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Window {
    /// Interval length in seconds (never 0: clamped to 1 µs).
    pub fn seconds(&self) -> f64 {
        (self.end_us.saturating_sub(self.start_us)).max(1) as f64 / 1e6
    }

    /// The named counter's increment over the interval (0 when absent).
    pub fn delta(&self, counter: &str) -> u64 {
        self.counters.get(counter).copied().unwrap_or(0)
    }

    /// The named counter's per-second rate over the interval.
    pub fn rate(&self, counter: &str) -> f64 {
        self.delta(counter) as f64 / self.seconds()
    }

    /// Interval quantile of the named histogram (`None` when absent).
    pub fn quantile(&self, histogram: &str, q: f64) -> Option<f64> {
        self.histograms.get(histogram).map(|h| h.quantile(q))
    }

    /// `numerator / (numerator + denominator)` over the interval — the
    /// shape of an abort rate: `ratio("oracle_ww_aborts_total",
    /// "oracle_commits_total")`. 0.0 when both are zero.
    pub fn ratio(&self, numerator: &str, denominator: &str) -> f64 {
        let n = self.delta(numerator) as f64;
        let d = self.delta(denominator) as f64;
        if n + d == 0.0 {
            0.0
        } else {
            n / (n + d)
        }
    }
}

struct RollupInner {
    last: Option<(u64, Snapshot)>,
    windows: VecDeque<Window>,
}

/// A bounded ring of interval windows; see the module docs.
///
/// # Example
///
/// ```
/// use wsi_obs::{Registry, Rollup};
///
/// let registry = Registry::new();
/// let commits = registry.counter("commits_total");
/// let latency = registry.histogram("commit_us");
///
/// let rollup = Rollup::new(8);
/// rollup.tick(0, registry.snapshot()); // baseline
/// commits.add(500);
/// for v in [100, 200, 400] {
///     latency.record(v);
/// }
/// rollup.tick(1_000_000, registry.snapshot());
///
/// let windows = rollup.windows();
/// assert_eq!(windows.len(), 1);
/// assert_eq!(windows[0].delta("commits_total"), 500);
/// assert!((windows[0].rate("commits_total") - 500.0).abs() < 1e-9);
/// assert!(windows[0].quantile("commit_us", 0.5).unwrap() >= 100.0);
/// ```
pub struct Rollup {
    inner: Mutex<RollupInner>,
    capacity: usize,
}

impl Rollup {
    /// A rollup retaining the most recent `capacity` windows (at least 1).
    pub fn new(capacity: usize) -> Rollup {
        Rollup {
            inner: Mutex::new(RollupInner {
                last: None,
                windows: VecDeque::new(),
            }),
            capacity: capacity.max(1),
        }
    }

    /// Closes the current interval at `now_us` with the cumulative
    /// snapshot `snap`. The first tick only establishes the baseline;
    /// every later tick appends one [`Window`], dropping the oldest past
    /// capacity. Returns the number of finished windows retained.
    pub fn tick(&self, now_us: u64, snap: Snapshot) -> usize {
        let mut inner = self.inner.lock();
        if let Some((prev_us, prev)) = inner.last.take() {
            let mut counters = BTreeMap::new();
            for (name, &value) in &snap.counters {
                let before = prev.counters.get(name).copied().unwrap_or(0);
                counters.insert(name.clone(), value.saturating_sub(before));
            }
            let mut histograms = BTreeMap::new();
            for (name, h) in &snap.histograms {
                let delta = match prev.histograms.get(name) {
                    Some(before) => h.delta_since(before),
                    None => h.clone(),
                };
                histograms.insert(name.clone(), delta);
            }
            inner.windows.push_back(Window {
                start_us: prev_us,
                end_us: now_us,
                counters,
                gauges: snap.gauges.clone(),
                histograms,
            });
            while inner.windows.len() > self.capacity {
                inner.windows.pop_front();
            }
        }
        inner.last = Some((now_us, snap));
        inner.windows.len()
    }

    /// The retained windows, oldest first.
    pub fn windows(&self) -> Vec<Window> {
        self.inner.lock().windows.iter().cloned().collect()
    }

    /// The most recently finished window, if any.
    pub fn latest(&self) -> Option<Window> {
        self.inner.lock().windows.back().cloned()
    }

    /// Renders every retained window as a JSON array: per-window bounds,
    /// counter deltas, and per-histogram count/mean/p50/p99/p999.
    pub fn render_json(&self) -> String {
        let mut out = String::from("[");
        let windows = self.windows();
        for (i, w) in windows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n  {{\"start_us\": {}, \"end_us\": {}, \"counters\": {{",
                w.start_us, w.end_us
            ));
            let mut first = true;
            for (name, value) in &w.counters {
                if !first {
                    out.push_str(", ");
                }
                first = false;
                out.push_str(&format!("\"{name}\": {value}"));
            }
            out.push_str("}, \"histograms\": {");
            let mut first = true;
            for (name, h) in &w.histograms {
                if !first {
                    out.push_str(", ");
                }
                first = false;
                out.push_str(&format!(
                    "\"{name}\": {{\"count\": {}, \"mean\": {:.3}, \"p50\": {:.1}, \
                     \"p99\": {:.1}, \"p999\": {:.1}}}",
                    h.count,
                    h.mean(),
                    h.quantile(0.50),
                    h.quantile(0.99),
                    h.quantile(0.999),
                ));
            }
            out.push_str("}}");
        }
        out.push_str("\n]");
        out
    }

    /// Renders the latest window in the Prometheus text format with an
    /// `_interval` suffix: counter deltas as gauges (they reset every
    /// window) plus `<name>_interval{quantile="…"}` latency series. Empty
    /// string until two ticks have happened.
    pub fn render_prometheus(&self) -> String {
        let Some(w) = self.latest() else {
            return String::new();
        };
        let mut out = String::new();
        out.push_str(&format!(
            "# interval [{} us, {} us]\n",
            w.start_us, w.end_us
        ));
        for (name, value) in &w.counters {
            out.push_str(&format!(
                "# TYPE {name}_interval gauge\n{name}_interval {value}\n"
            ));
        }
        for (name, h) in &w.histograms {
            out.push_str(&format!("# TYPE {name}_interval summary\n"));
            for (label, q) in [("0.5", 0.5), ("0.99", 0.99), ("0.999", 0.999)] {
                out.push_str(&format!(
                    "{name}_interval{{quantile=\"{label}\"}} {:.1}\n",
                    h.quantile(q)
                ));
            }
            out.push_str(&format!("{name}_interval_count {}\n", h.count));
        }
        out
    }
}

impl std::fmt::Debug for Rollup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Rollup")
            .field("windows", &self.inner.lock().windows.len())
            .field("capacity", &self.capacity)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn windows_are_deltas_not_cumulatives() {
        let registry = Registry::new();
        let commits = registry.counter("commits_total");
        let aborts = registry.counter("aborts_total");
        let latency = registry.histogram("txn_us");

        let rollup = Rollup::new(4);
        rollup.tick(0, registry.snapshot());

        commits.add(100);
        aborts.add(10);
        latency.record(50);
        latency.record(150);
        assert_eq!(rollup.tick(1_000_000, registry.snapshot()), 1);

        commits.add(300);
        latency.record(1000);
        assert_eq!(rollup.tick(2_000_000, registry.snapshot()), 2);

        let windows = rollup.windows();
        assert_eq!(windows[0].delta("commits_total"), 100);
        assert_eq!(windows[0].delta("aborts_total"), 10);
        assert_eq!(windows[1].delta("commits_total"), 300);
        assert_eq!(windows[1].delta("aborts_total"), 0);
        // Interval histograms: the second window sees only the new sample.
        assert_eq!(windows[0].histograms["txn_us"].count, 2);
        assert_eq!(windows[1].histograms["txn_us"].count, 1);
        assert!(windows[1].quantile("txn_us", 0.5).unwrap() >= 512.0);
        // Rates and ratios.
        assert!((windows[1].rate("commits_total") - 300.0).abs() < 1e-9);
        let abort_rate = windows[0].ratio("aborts_total", "commits_total");
        assert!((abort_rate - 10.0 / 110.0).abs() < 1e-9);
    }

    #[test]
    fn capacity_drops_oldest() {
        let registry = Registry::new();
        let c = registry.counter("c");
        let rollup = Rollup::new(2);
        rollup.tick(0, registry.snapshot());
        for i in 1..=5u64 {
            c.add(i);
            rollup.tick(i * 1_000_000, registry.snapshot());
        }
        let windows = rollup.windows();
        assert_eq!(windows.len(), 2);
        assert_eq!(windows[0].delta("c"), 4);
        assert_eq!(windows[1].delta("c"), 5);
    }

    #[test]
    fn expositions_render() {
        let registry = Registry::new();
        let c = registry.counter("commits_total");
        let h = registry.histogram("txn_us");
        let rollup = Rollup::new(4);
        assert_eq!(rollup.render_prometheus(), "");
        rollup.tick(0, registry.snapshot());
        c.add(7);
        h.record(123);
        rollup.tick(1_000_000, registry.snapshot());

        let json = rollup.render_json();
        assert!(json.contains("\"commits_total\": 7"));
        assert!(json.contains("\"p999\""));
        let prom = rollup.render_prometheus();
        assert!(prom.contains("commits_total_interval 7"));
        assert!(prom.contains("txn_us_interval{quantile=\"0.999\"}"));
    }
}

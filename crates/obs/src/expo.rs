//! Exposition: Prometheus text format and JSON, plus a parser for the
//! Prometheus rendering (used for round-trip testing and by tooling that
//! wants to diff two scrapes).

use std::collections::BTreeMap;

use crate::hist::{bucket_bounds, HistogramSnapshot};
use crate::BUCKETS;

/// A point-in-time view of every metric in a [`crate::Registry`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram aggregates by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

/// Failure to parse a Prometheus text rendering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong, with the offending line.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "prometheus parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(message: impl Into<String>) -> ParseError {
    ParseError {
        message: message.into(),
    }
}

impl Snapshot {
    /// Interpolated quantile of the named histogram — the p50/p99/p999
    /// lookup without per-call-site bucket math. `None` when no histogram
    /// of that name is in the snapshot; 0.0 when it is present but empty
    /// (matching [`HistogramSnapshot::quantile`]).
    pub fn quantile(&self, histogram: &str, q: f64) -> Option<f64> {
        self.histograms.get(histogram).map(|h| h.quantile(q))
    }

    /// Renders in the Prometheus text exposition format.
    ///
    /// Histograms render with cumulative `_bucket{le="…"}` series (inclusive
    /// upper bounds, matching the log₂ bucket layout), `_sum`, `_count`, and
    /// non-standard but scrape-compatible `_min`/`_max` series. The output
    /// parses back losslessly via [`Snapshot::parse_prometheus`].
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            out.push_str(&format!("# TYPE {name} counter\n{name} {value}\n"));
        }
        for (name, value) in &self.gauges {
            out.push_str(&format!("# TYPE {name} gauge\n{name} {value}\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!("# TYPE {name} histogram\n"));
            let highest = h
                .buckets
                .iter()
                .rposition(|&n| n > 0)
                .map(|i| i.min(BUCKETS - 2))
                .unwrap_or(0);
            let mut cumulative = 0u64;
            for i in 0..=highest {
                cumulative += h.buckets[i];
                let le = match bucket_bounds(i).1 {
                    Some(upper) => upper.to_string(),
                    None => unreachable!("capped at BUCKETS - 2"),
                };
                out.push_str(&format!("{name}_bucket{{le=\"{le}\"}} {cumulative}\n"));
            }
            out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
            out.push_str(&format!("{name}_sum {}\n", h.sum));
            out.push_str(&format!("{name}_count {}\n", h.count));
            out.push_str(&format!("{name}_min {}\n", h.min_for_display()));
            out.push_str(&format!("{name}_max {}\n", h.max));
        }
        out
    }

    /// Renders as a single JSON object:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {...}}`, with
    /// per-histogram count/sum/min/max/mean, interpolated p50/p90/p99, and
    /// the non-empty `[upper_bound, count]` bucket pairs.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        out.push_str(&render_scalar_map(&self.counters));
        out.push_str("},\n  \"gauges\": {");
        out.push_str(&render_scalar_map(&self.gauges));
        out.push_str("},\n  \"histograms\": {");
        let mut first = true;
        for (name, h) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n    \"{name}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                 \"mean\": {:.3}, \"p50\": {:.1}, \"p90\": {:.1}, \"p99\": {:.1}, \"buckets\": [",
                h.count,
                h.sum,
                h.min_for_display(),
                h.max,
                h.mean(),
                h.quantile(0.50),
                h.quantile(0.90),
                h.quantile(0.99),
            ));
            let mut first_bucket = true;
            for (i, &n) in h.buckets.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                if !first_bucket {
                    out.push_str(", ");
                }
                first_bucket = false;
                match bucket_bounds(i).1 {
                    Some(upper) => out.push_str(&format!("[{upper}, {n}]")),
                    None => out.push_str(&format!("[null, {n}]")),
                }
            }
            out.push_str("]}");
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("}\n}\n");
        out
    }

    /// Parses a [`Snapshot::render_prometheus`] rendering back into a
    /// snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError`] on malformed lines, values, or bucket bounds
    /// that do not match the log₂ layout.
    pub fn parse_prometheus(text: &str) -> Result<Snapshot, ParseError> {
        let mut snap = Snapshot::default();
        let mut kinds: BTreeMap<String, String> = BTreeMap::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut parts = rest.split_whitespace();
                let (name, kind) = (
                    parts
                        .next()
                        .ok_or_else(|| err(format!("bad TYPE: {line}")))?,
                    parts
                        .next()
                        .ok_or_else(|| err(format!("bad TYPE: {line}")))?,
                );
                kinds.insert(name.to_string(), kind.to_string());
                if kind == "histogram" {
                    snap.histograms
                        .insert(name.to_string(), HistogramSnapshot::empty());
                }
                continue;
            }
            if line.starts_with('#') {
                continue;
            }
            let (series, value) = line
                .rsplit_once(' ')
                .ok_or_else(|| err(format!("no value: {line}")))?;
            let value: u64 = value
                .parse()
                .map_err(|_| err(format!("bad value: {line}")))?;
            let (name, label) = match series.split_once('{') {
                Some((n, l)) => (n, Some(l.trim_end_matches('}'))),
                None => (series, None),
            };
            match kinds.get(name).map(String::as_str) {
                Some("counter") => {
                    snap.counters.insert(name.to_string(), value);
                }
                Some("gauge") => {
                    snap.gauges.insert(name.to_string(), value);
                }
                _ => {
                    // A histogram component series: <base>_bucket/_sum/….
                    let (base, part) = series_base(name, &kinds)
                        .ok_or_else(|| err(format!("unknown metric: {line}")))?;
                    let h = snap
                        .histograms
                        .get_mut(&base)
                        .expect("series_base only returns declared histograms");
                    match part {
                        "bucket" => {
                            let le = label
                                .and_then(|l| l.strip_prefix("le=\""))
                                .and_then(|l| l.strip_suffix('"'))
                                .ok_or_else(|| err(format!("bucket without le: {line}")))?;
                            if le == "+Inf" {
                                // Cumulative total; per-bucket counts are
                                // recovered in the finish pass below.
                                continue;
                            }
                            let upper: u64 = le
                                .parse()
                                .map_err(|_| err(format!("bad le bound: {line}")))?;
                            let idx = bucket_for_upper(upper)
                                .ok_or_else(|| err(format!("le not a bucket bound: {line}")))?;
                            // Store cumulative for now; de-cumulated below.
                            h.buckets[idx] = value;
                        }
                        "sum" => h.sum = value,
                        "count" => h.count = value,
                        "min" => h.min = value,
                        "max" => h.max = value,
                        _ => return Err(err(format!("unknown series: {line}"))),
                    }
                }
            }
        }
        // De-cumulate bucket series and push the remainder into the
        // unbounded bucket.
        for h in snap.histograms.values_mut() {
            let mut prev = 0u64;
            let mut assigned = 0u64;
            for b in h.buckets.iter_mut().take(BUCKETS - 1) {
                let cumulative = (*b).max(prev);
                *b = cumulative - prev;
                assigned += *b;
                prev = cumulative;
            }
            h.buckets[BUCKETS - 1] = h.count.saturating_sub(assigned);
        }
        Ok(snap)
    }
}

/// Splits a histogram component series name `<base>_<part>` where `<base>`
/// is a declared histogram and `<part>` one of its suffixes.
fn series_base(name: &str, kinds: &BTreeMap<String, String>) -> Option<(String, &'static str)> {
    for part in ["bucket", "sum", "count", "min", "max"] {
        if let Some(base) = name.strip_suffix(&format!("_{part}")) {
            if kinds.get(base).map(String::as_str) == Some("histogram") {
                return Some((base.to_string(), part));
            }
        }
    }
    None
}

/// Inverse of the bucket upper bounds: `0 → 0`, `2^i - 1 → i`.
fn bucket_for_upper(upper: u64) -> Option<usize> {
    if upper == 0 {
        return Some(0);
    }
    let candidate = bucket_bounds(crate::hist::bucket_index(upper)).1?;
    if candidate == upper {
        Some(crate::hist::bucket_index(upper))
    } else {
        None
    }
}

fn render_scalar_map(map: &BTreeMap<String, u64>) -> String {
    let mut out = String::new();
    let mut first = true;
    for (name, value) in map {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("\n    \"{name}\": {value}"));
    }
    if !map.is_empty() {
        out.push_str("\n  ");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Histogram, Registry};

    fn sample_snapshot() -> Snapshot {
        let r = Registry::new();
        r.counter("commits_total").add(10);
        r.counter("aborts_total").add(3);
        r.gauge("active_txns").set(4);
        let h = r.histogram("commit_us");
        for v in [0u64, 1, 2, 3, 900, 1500, 1 << 40] {
            h.record(v);
        }
        r.snapshot()
    }

    #[test]
    fn prometheus_roundtrip_is_lossless() {
        let snap = sample_snapshot();
        let text = snap.render_prometheus();
        let parsed = Snapshot::parse_prometheus(&text).unwrap();
        assert_eq!(parsed, snap);
    }

    #[test]
    fn empty_histogram_roundtrips() {
        let r = Registry::new();
        let _ = r.histogram("quiet_us");
        let snap = r.snapshot();
        let parsed = Snapshot::parse_prometheus(&snap.render_prometheus()).unwrap();
        assert_eq!(parsed, snap);
    }

    #[test]
    fn unbounded_bucket_roundtrips() {
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(5);
        let mut snap = Snapshot::default();
        snap.histograms.insert("tail_us".into(), h.snapshot());
        let parsed = Snapshot::parse_prometheus(&snap.render_prometheus()).unwrap();
        assert_eq!(parsed, snap);
    }

    #[test]
    fn json_rendering_contains_quantiles_and_buckets() {
        let snap = sample_snapshot();
        let json = snap.render_json();
        assert!(json.contains("\"commits_total\": 10"));
        assert!(json.contains("\"p99\""));
        assert!(json.contains("\"buckets\": [[0, 1]"));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Snapshot::parse_prometheus("nonsense without declaration 5").is_err());
        assert!(Snapshot::parse_prometheus("# TYPE x counter\nx notanumber").is_err());
    }
}

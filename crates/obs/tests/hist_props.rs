//! Property tests of the histogram contract: bucket boundaries contain
//! their values, merge is associative/commutative with an identity, and
//! exact percentiles match the nearest-rank definition.

use proptest::collection::vec;
use proptest::prelude::*;
use wsi_obs::{ExactHistogram, Histogram, HistogramSnapshot, Registry, BUCKETS};

fn fill(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every value lands in exactly one bucket, and that bucket's bounds
    /// contain it (boundaries are total over `u64` with no gaps/overlaps).
    #[test]
    fn bucket_bounds_contain_recorded_values(v in any::<u64>()) {
        let snap = fill(&[v]);
        let populated: Vec<usize> = (0..BUCKETS).filter(|&i| snap.buckets[i] > 0).collect();
        prop_assert_eq!(populated.len(), 1, "exactly one bucket populated");
        let (lo, hi) = HistogramSnapshot::bucket_bounds(populated[0]);
        prop_assert!(v >= lo, "{} below lower bound {}", v, lo);
        if let Some(hi) = hi {
            prop_assert!(v <= hi, "{} above upper bound {}", v, hi);
        }
    }

    /// Bucket upper bounds chain with no gaps: bucket i+1 starts exactly
    /// one past bucket i's upper bound.
    #[test]
    fn bucket_bounds_chain_without_gaps(i in 0usize..63) {
        let (_, hi) = HistogramSnapshot::bucket_bounds(i);
        let (next_lo, _) = HistogramSnapshot::bucket_bounds(i + 1);
        let hi = hi.expect("only the last bucket is unbounded");
        prop_assert_eq!(next_lo, hi + 1);
    }

    /// Merging snapshots is associative and commutative, with the empty
    /// snapshot as identity — the algebra that makes sharded aggregation
    /// order-independent.
    #[test]
    fn merge_is_associative_commutative_with_identity(
        a in vec(any::<u64>(), 0..20),
        b in vec(any::<u64>(), 0..20),
        c in vec(any::<u64>(), 0..20),
    ) {
        let (sa, sb, sc) = (fill(&a), fill(&b), fill(&c));

        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);

        // a ⊕ b == b ⊕ a
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(ab, ba);

        // a ⊕ ∅ == a
        let mut with_id = sa.clone();
        with_id.merge(&HistogramSnapshot::empty());
        prop_assert_eq!(with_id, sa);

        // Merge of everything equals recording everything into one.
        let all: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        prop_assert_eq!(left, fill(&all));
    }

    /// `ExactHistogram::percentile` is the nearest-rank percentile over the
    /// sorted samples — the definition `wsi-sim`'s `LatencyStats` promises.
    #[test]
    fn exact_percentile_is_nearest_rank(
        values in vec(any::<u64>(), 1..50),
        p_thousandths in 0u64..=1000,
    ) {
        let p = p_thousandths as f64 / 1000.0;
        let mut e = ExactHistogram::new();
        for &v in &values {
            e.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        prop_assert_eq!(e.percentile(p), sorted[rank - 1]);
    }

    /// The bucketed estimate of a quantile is within the true value's
    /// bucket: never below the bucket's lower bound nor above its upper.
    #[test]
    fn bucketed_quantile_brackets_exact(values in vec(1u64..1_000_000, 1..50)) {
        let snap = fill(&values);
        let mut e = ExactHistogram::new();
        for &v in &values {
            e.record(v);
        }
        for p in [0.5, 0.9, 0.99, 1.0] {
            let truth = e.percentile(p);
            let est = snap.quantile(p);
            let (lo, hi) = HistogramSnapshot::bucket_bounds(
                (0..BUCKETS)
                    .find(|&i| {
                        let (l, h) = HistogramSnapshot::bucket_bounds(i);
                        truth >= l && h.is_none_or(|h| truth <= h)
                    })
                    .expect("bounds are total"),
            );
            prop_assert!(est >= lo as f64, "p{p}: estimate {est} below bucket [{lo}, {hi:?}]");
            if let Some(hi) = hi {
                prop_assert!(est <= hi as f64, "p{p}: estimate {est} above bucket [{lo}, {hi}]");
            }
        }
    }

    /// `Snapshot::quantile` (the registry-level lookup, including p999)
    /// brackets the exact nearest-rank percentile within one bucket — the
    /// same guarantee as the underlying histogram, reachable by name with
    /// no per-call-site bucket math.
    #[test]
    fn registry_snapshot_quantile_brackets_exact(values in vec(1u64..1_000_000, 1..80)) {
        let registry = Registry::new();
        let h = registry.histogram("txn_us");
        let mut e = ExactHistogram::new();
        for &v in &values {
            h.record(v);
            e.record(v);
        }
        let snap = registry.snapshot();
        prop_assert!(snap.quantile("absent", 0.5).is_none());
        for p in [0.5, 0.99, 0.999] {
            let truth = e.percentile(p);
            let est = snap.quantile("txn_us", p).expect("registered histogram");
            let (lo, hi) = HistogramSnapshot::bucket_bounds(HistogramSnapshot::bucket_of(truth));
            prop_assert!(est >= lo as f64, "p{p}: {est} below bucket [{lo}, {hi:?}]");
            if let Some(hi) = hi {
                prop_assert!(est <= hi as f64, "p{p}: {est} above bucket [{lo}, {hi}]");
            }
        }
    }

    /// Interval deltas reconstruct exactly: recording A then B, the delta
    /// between the cumulative snapshots equals a histogram that saw only B
    /// (buckets, count; min/max within bucket resolution) — the identity
    /// windowed rollups rely on.
    #[test]
    fn delta_since_recovers_the_interval(
        a in vec(1u64..1_000_000, 0..40),
        b in vec(1u64..1_000_000, 1..40),
    ) {
        let h = Histogram::new();
        for &v in &a {
            h.record(v);
        }
        let before = h.snapshot();
        for &v in &b {
            h.record(v);
        }
        let after = h.snapshot();
        let delta = after.delta_since(&before);
        let only_b = fill(&b);
        prop_assert_eq!(&delta.buckets, &only_b.buckets);
        prop_assert_eq!(delta.count, only_b.count);
        prop_assert_eq!(delta.sum, only_b.sum);
        // min/max are bucket-resolution approximations of the interval.
        let true_min = *b.iter().min().unwrap();
        let true_max = *b.iter().max().unwrap();
        let (min_lo, min_hi) = HistogramSnapshot::bucket_bounds(HistogramSnapshot::bucket_of(true_min));
        prop_assert!(delta.min >= min_lo && min_hi.is_none_or(|hi| delta.min <= hi));
        let (max_lo, max_hi) = HistogramSnapshot::bucket_bounds(HistogramSnapshot::bucket_of(true_max));
        prop_assert!(delta.max >= max_lo && max_hi.is_none_or(|hi| delta.max <= hi));
        // Interval quantiles bracket the interval's exact percentile within
        // one bucket (min/max clamping differs from a fresh histogram's by
        // at most the bucket width, so assert the bucket, not equality).
        let mut e = ExactHistogram::new();
        for &v in &b {
            e.record(v);
        }
        for p in [0.5, 0.999] {
            let truth = e.percentile(p);
            let est = delta.quantile(p);
            let (lo, hi) = HistogramSnapshot::bucket_bounds(HistogramSnapshot::bucket_of(truth));
            prop_assert!(est >= lo as f64, "p{p}: {est} below bucket [{lo}, {hi:?}]");
            if let Some(hi) = hi {
                prop_assert!(est <= hi as f64, "p{p}: {est} above bucket [{lo}, {hi}]");
            }
        }
    }
}

//! Property tests of the simulated status-oracle server: batching
//! invariants, timing causality, and decision consistency with the pure
//! core state machine.

use proptest::prelude::*;
use wsi_core::{CommitRequest, IsolationLevel, RowId, StatusOracleCore, Timestamp};
use wsi_oracle::{OracleConfig, OracleServer};
use wsi_sim::SimTime;

/// A workload item: arrival gap (µs) and row sets.
type Item = (u64, Vec<u64>, Vec<u64>);

fn items() -> impl Strategy<Value = Vec<Item>> {
    prop::collection::vec(
        (
            0u64..20_000,
            prop::collection::vec(0u64..50, 0..5),
            prop::collection::vec(0u64..50, 0..5),
        ),
        1..60,
    )
}

fn rows(ids: &[u64]) -> Vec<RowId> {
    ids.iter().map(|&i| RowId(i)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every write-transaction decision is eventually carried by exactly one
    /// flush, flush ready-times are causal (≥ the flush instant), and no
    /// decision is lost or duplicated.
    #[test]
    fn every_decision_flushes_exactly_once(schedule in items()) {
        let mut oracle = OracleServer::new(OracleConfig::paper_default(
            IsolationLevel::WriteSnapshot,
        ));
        let mut now = SimTime::ZERO;
        let mut expected: Vec<Timestamp> = Vec::new();
        let mut delivered: Vec<Timestamp> = Vec::new();
        for (gap, reads, writes) in &schedule {
            now += SimTime(*gap);
            let start = oracle.handle_start(now);
            let resp = oracle.handle_commit(
                now,
                CommitRequest::new(start.ts, rows(reads), rows(writes)),
            );
            if writes.is_empty() {
                // Read-only: immediate, never in a flush.
                prop_assert_eq!(resp.ready, Some(resp.cpu_done));
                continue;
            }
            expected.push(start.ts);
            prop_assert!(resp.cpu_done >= now);
            if let Some(flush) = resp.flush {
                prop_assert!(flush.ready >= resp.cpu_done);
                delivered.extend(flush.decisions.iter().map(|&(ts, _)| ts));
            }
        }
        // Drain the tail via the deadline path.
        while let Some(deadline) = oracle.next_flush_deadline() {
            let at = deadline.max(now);
            let flush = oracle.flush(at);
            delivered.extend(flush.decisions.iter().map(|&(ts, _)| ts));
            if flush.decisions.is_empty() {
                break;
            }
            now = at;
        }
        let mut expected_sorted = expected.clone();
        expected_sorted.sort_unstable();
        let mut delivered_sorted = delivered.clone();
        delivered_sorted.sort_unstable();
        prop_assert_eq!(expected_sorted, delivered_sorted);
    }

    /// The server's commit decisions match the pure core state machine fed
    /// the same request sequence — timing must never change semantics.
    #[test]
    fn server_decisions_match_pure_core(schedule in items()) {
        let mut server = OracleServer::new(OracleConfig::paper_default(
            IsolationLevel::WriteSnapshot,
        ));
        let mut core = StatusOracleCore::unbounded(IsolationLevel::WriteSnapshot);
        let mut now = SimTime::ZERO;
        for (gap, reads, writes) in &schedule {
            now += SimTime(*gap);
            let s_ts = server.handle_start(now).ts;
            let c_ts = core.begin();
            prop_assert_eq!(s_ts, c_ts, "timestamp streams must agree");
            let s_out = server
                .handle_commit(now, CommitRequest::new(s_ts, rows(reads), rows(writes)))
                .outcome;
            let c_out = core.commit(CommitRequest::new(c_ts, rows(reads), rows(writes)));
            prop_assert_eq!(s_out.is_committed(), c_out.is_committed());
        }
    }

    /// Recovery from the simulated ledger preserves refusals for pre-crash
    /// transactions under arbitrary schedules.
    #[test]
    fn recovery_preserves_refusals(schedule in items(), probe_row in 0u64..50) {
        let mut server = OracleServer::new(OracleConfig::paper_default(
            IsolationLevel::WriteSnapshot,
        ));
        let mut now = SimTime::from_ms(6);
        let in_flight = server.handle_start(now).ts;
        let mut write_sets: Vec<(Timestamp, Vec<u64>)> = Vec::new();
        for (gap, reads, writes) in &schedule {
            now += SimTime(*gap);
            let ts = server.handle_start(now).ts;
            let resp = server.handle_commit(
                now,
                CommitRequest::new(ts, rows(reads), rows(writes)),
            );
            if resp.outcome.is_committed() && !writes.is_empty() {
                write_sets.push((ts, writes.clone()));
            }
        }
        server.flush(now + SimTime::from_ms(10));

        let ledger = server.ledger_snapshot();
        let mut recovered = OracleServer::recover(
            OracleConfig::paper_default(IsolationLevel::WriteSnapshot),
            &ledger,
            |start| {
                write_sets
                    .iter()
                    .find(|&&(s, _)| s == start)
                    .map(|(_, w)| rows(w))
                    .unwrap_or_default()
            },
        );
        // Probe with the pre-crash in-flight transaction.
        let probe = CommitRequest::new(in_flight, rows(&[probe_row]), rows(&[99]));
        let original = server.handle_commit(now + SimTime::from_ms(20), probe.clone());
        let after = recovered.handle_commit(SimTime::from_ms(50), probe);
        prop_assert_eq!(
            original.outcome.is_committed(),
            after.outcome.is_committed()
        );
    }
}

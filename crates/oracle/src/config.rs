//! Status-oracle configuration.

use wsi_core::IsolationLevel;
use wsi_sim::SimTime;
use wsi_wal::{BatchPolicy, LedgerConfig};

/// Tunables of the status-oracle server model.
#[derive(Debug, Clone, Copy)]
pub struct OracleConfig {
    /// Isolation level: which row set the critical section checks.
    pub level: IsolationLevel,
    /// `lastCommit` residency bound (`None` = unbounded, Algorithms 1–2;
    /// `Some(NR)` = Algorithm 3 with `T_max`).
    pub last_commit_capacity: Option<usize>,
    /// Fixed critical-section cost per commit request (dispatch, queues,
    /// commit-table insert).
    pub base_request: SimTime,
    /// Cost of loading/updating one `lastCommit` memory item. SI touches
    /// `|R_w|` items (check and update hit the same, already-cached ones);
    /// WSI touches `|R_r| + |R_w|` — the paper’s “twice the memory items”.
    pub per_item_load: SimTime,
    /// Critical-section cost of issuing a start timestamp (served from the
    /// reserved batch, no persistence).
    pub start_request: SimTime,
    /// Latency of one replicated WAL batch write (BookKeeper quorum write).
    /// Dominates the 4.1 ms commit latency of §6.2.
    pub wal_write: SimTime,
    /// Concurrent WAL writes in flight (BookKeeper pipelining); with
    /// `wal_write` this bounds WAL throughput at `depth / wal_write`.
    pub wal_pipeline: usize,
    /// Batch triggers: size or time since the last trigger (Appendix A).
    pub batch: BatchPolicy,
    /// Timestamps reserved per WAL reservation record (§6.2: "thousands").
    pub ts_reservation: u64,
    /// Replication shape of the ledger.
    pub ledger: LedgerConfig,
}

impl OracleConfig {
    /// Parameters calibrated to the paper's Figure 5 and §6.2 numbers:
    /// SI saturates near 104 K TPS and WSI near 92 K on the complex
    /// workload (≈5 reads + 5 writes per transaction), lone-commit latency
    /// ≈ 4.1 ms, start-timestamp latency dominated by the network.
    pub fn paper_default(level: IsolationLevel) -> Self {
        OracleConfig {
            level,
            last_commit_capacity: None,
            base_request: SimTime::from_us(8),
            per_item_load: SimTime::from_us(0), // sub-µs: see per_item_load_ns
            start_request: SimTime::from_us(1),
            wal_write: SimTime::from_ms_f64(4.0),
            wal_pipeline: 80,
            batch: BatchPolicy::paper_default(),
            ts_reservation: 10_000,
            ledger: LedgerConfig {
                replicas: 2, // the paper's deployment: 2 BookKeeper machines
                ack_quorum: 2,
                batch: BatchPolicy::paper_default(),
                flush_delay_us: 0,
            },
        }
    }

    /// Per-item load cost in nanoseconds (sub-microsecond granularity that
    /// [`SimTime`] cannot express directly; the request cost is rounded to
    /// microseconds only after summing).
    pub fn per_item_load_ns(&self) -> u64 {
        if self.per_item_load.as_us() > 0 {
            self.per_item_load.as_us() * 1_000
        } else {
            260 // calibrated default: 0.26 µs per memory item
        }
    }

    /// Critical-section time of a commit request that loads `items` memory
    /// items.
    pub fn commit_service(&self, items: usize) -> SimTime {
        let ns = self.base_request.as_us() * 1_000 + self.per_item_load_ns() * items as u64;
        SimTime::from_us(ns.div_ceil(1_000).max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_cost_scales_with_items() {
        let cfg = OracleConfig::paper_default(IsolationLevel::WriteSnapshot);
        let si_like = cfg.commit_service(5);
        let wsi_like = cfg.commit_service(10);
        assert!(wsi_like > si_like);
        // Calibration sanity: the 10-item request costs ≈ 10.6 µs, i.e.
        // ≈ 94 K requests/s on one core.
        assert!((9..=12).contains(&wsi_like.as_us()), "{wsi_like}");
        assert!((9..=11).contains(&si_like.as_us()), "{si_like}");
    }

    #[test]
    fn explicit_per_item_cost_overrides_default() {
        let mut cfg = OracleConfig::paper_default(IsolationLevel::Snapshot);
        cfg.per_item_load = SimTime::from_us(2);
        assert_eq!(cfg.per_item_load_ns(), 2_000);
        assert_eq!(cfg.commit_service(10), SimTime::from_us(28));
    }

    #[test]
    fn zero_items_still_costs_base() {
        let cfg = OracleConfig::paper_default(IsolationLevel::Snapshot);
        assert_eq!(cfg.commit_service(0), SimTime::from_us(8));
    }
}

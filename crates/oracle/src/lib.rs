//! The status oracle server: conflict decisions, WAL persistence, recovery,
//! and the saturation cost model.
//!
//! The lock-free scheme centralizes conflict detection in one server: "a
//! single server, i.e., the status oracle, receives the commit requests
//! accompanied by the set of the identifiers of modified rows" (§2.2) — and,
//! under write-snapshot isolation, the read rows as well (§5). This crate
//! wraps the pure [`wsi_core::StatusOracleCore`] state machine with
//! everything the paper's deployment adds:
//!
//! * an **integrated timestamp oracle** that reserves timestamp batches
//!   through the WAL so start requests never pay a persistence round trip
//!   (§6.2: start-timestamp latency 0.17 ms vs 4.1 ms for commits);
//! * **write-ahead logging** of every commit/abort through a
//!   BookKeeper-like ledger with the paper's batch triggers — 1 KB of data
//!   or 5 ms since the last trigger (Appendix A); a commit is acknowledged
//!   only once its record is durable;
//! * **crash recovery** that replays the surviving log into a fresh oracle
//!   ([`OracleServer::recover`]);
//! * a **CPU cost model** for the cluster simulation: the conflict check
//!   runs in a critical section (§6.3), and "the running time of the
//!   critical section is slightly higher with write-snapshot isolation since
//!   it requires loading as twice memory items as with snapshot isolation" —
//!   which is why WSI saturates at ≈92 K TPS where SI reaches ≈104 K
//!   (Figure 5). The model charges a base cost per request plus a per-item
//!   cost for every `lastCommit` load: `|R_w|` items under SI, `|R_r| +
//!   |R_w|` under WSI.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

mod config;
mod server;

pub use config::OracleConfig;
pub use server::{CommitResponse, FlushResult, OracleServer, OracleServerStats, StartResponse};

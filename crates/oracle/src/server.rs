//! The simulated status-oracle server.

use wsi_core::{CommitOutcome, CommitRequest, IsolationLevel, StatusOracleCore, Timestamp};
use wsi_sim::{SimTime, Station};
use wsi_wal::{decode_records, encode_record, Ledger, TxnLogRecord};

use crate::config::OracleConfig;

/// Response to a start-timestamp request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StartResponse {
    /// The issued start timestamp.
    pub ts: Timestamp,
    /// When the response leaves the oracle.
    pub done: SimTime,
}

/// Response to a commit request.
#[derive(Debug, Clone)]
pub struct CommitResponse {
    /// The oracle's decision.
    pub outcome: CommitOutcome,
    /// When the critical section finished (decision made in memory).
    pub cpu_done: SimTime,
    /// When the response may leave the oracle. For write transactions this
    /// is `None` until the WAL batch carrying the decision is durable — the
    /// caller collects it from the [`FlushResult`] that includes this
    /// transaction. Read-only commits respond immediately.
    pub ready: Option<SimTime>,
    /// If appending this record tripped a batch trigger, the flush it
    /// caused (containing this and all previously pending decisions).
    pub flush: Option<FlushResult>,
}

/// A durable WAL batch: when it is durable and which decisions it carries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlushResult {
    /// When the batch write is acknowledged by the ledger quorum.
    pub ready: SimTime,
    /// `(start_ts, outcome)` of every transaction whose decision this batch
    /// makes durable.
    pub decisions: Vec<(Timestamp, CommitOutcome)>,
}

/// Cumulative oracle-server counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OracleServerStats {
    /// Start timestamps issued.
    pub starts: u64,
    /// Commit requests decided.
    pub commit_requests: u64,
    /// WAL batches written.
    pub flushes: u64,
    /// Records persisted.
    pub records: u64,
    /// Timestamp-reservation records written.
    pub ts_reservations: u64,
    /// Transaction-status queries served (§2.2's fallback when commit
    /// timestamps are not replicated to clients or written back).
    pub status_queries: u64,
}

/// The status oracle with its integrated timestamp oracle (§6.2, §A).
///
/// Functionally it is [`StatusOracleCore`] plus a replicated WAL; for the
/// simulation it also charges virtual time: a single-server [`Station`]
/// models the critical section and a pipelined station models BookKeeper.
#[derive(Debug)]
pub struct OracleServer {
    config: OracleConfig,
    core: StatusOracleCore,
    cpu: Station,
    wal_station: Station,
    ledger: Ledger,
    /// Decisions whose records sit in the unflushed batch.
    pending: Vec<(Timestamp, CommitOutcome)>,
    /// Virtual time of the last batch trigger.
    last_trigger: SimTime,
    /// Bytes accumulated since the last trigger.
    pending_bytes: usize,
    /// Highest timestamp covered by a durable reservation record.
    ts_reserved_upto: Timestamp,
    stats: OracleServerStats,
}

impl OracleServer {
    /// Creates a fresh oracle.
    pub fn new(config: OracleConfig) -> Self {
        let core = match config.last_commit_capacity {
            Some(cap) => StatusOracleCore::bounded(config.level, cap),
            None => StatusOracleCore::unbounded(config.level),
        };
        OracleServer {
            core,
            cpu: Station::new(1), // the critical section (§6.3)
            wal_station: Station::new(config.wal_pipeline),
            ledger: Ledger::open(config.ledger),
            pending: Vec::new(),
            last_trigger: SimTime::ZERO,
            pending_bytes: 0,
            ts_reserved_upto: Timestamp::ZERO,
            stats: OracleServerStats::default(),
            config,
        }
    }

    /// The enforced isolation level.
    pub fn level(&self) -> IsolationLevel {
        self.config.level
    }

    /// Read access to the core state machine (status queries, `T_max`).
    pub fn core(&self) -> &StatusOracleCore {
        &self.core
    }

    /// Registers this oracle's metric series in `registry` and attaches
    /// shared handles so future activity streams in lock-free: the core's
    /// conflict-check counters (`oracle_*` — begins, per-reason aborts,
    /// rows checked/recorded, `lastCommit` evictions under `T_max`) and the
    /// replicated ledger's series (`wal_*` — records, flushes, payload
    /// bytes, quorum losses, flush latency, batch sizes).
    pub fn register_obs(&mut self, registry: &wsi_obs::Registry) {
        self.core.counters().register_in(registry);
        let obs = wsi_wal::LedgerObs::default();
        obs.register_in(registry);
        self.ledger.attach_obs(obs);
    }

    /// Handles a start-timestamp request arriving at `now`.
    ///
    /// Timestamps come from in-memory reservations: when the counter nears
    /// the reserved bound, a reservation record goes into the WAL batch —
    /// but the response never waits for it ("the timestamp oracle could
    /// reserve thousands of timestamps per each write into the write-ahead
    /// log", §6.2). A crash simply wastes the unissued remainder.
    pub fn handle_start(&mut self, now: SimTime) -> StartResponse {
        let done = self.cpu.submit(now, self.config.start_request);
        let ts = self.core.begin();
        self.stats.starts += 1;
        if ts >= self.ts_reserved_upto {
            let upto = Timestamp(ts.raw() + self.config.ts_reservation);
            self.append_record(TxnLogRecord::TimestampReservation { upto: upto.raw() }, now);
            self.ts_reserved_upto = upto;
            self.stats.ts_reservations += 1;
        }
        StartResponse { ts, done }
    }

    /// Handles a transaction-status query arriving at `now` (§2.2: readers
    /// without a local commit-timestamp replica must ask the oracle whether
    /// a version's writer committed). Costs one critical-section slot.
    pub fn handle_status_query(&mut self, now: SimTime) -> SimTime {
        self.stats.status_queries += 1;
        self.cpu.submit(now, self.config.start_request)
    }

    /// Handles a commit request arriving at `now` (Algorithms 1–3 plus WAL).
    pub fn handle_commit(&mut self, now: SimTime, req: CommitRequest) -> CommitResponse {
        self.stats.commit_requests += 1;
        let items = match self.config.level {
            // SI checks and updates the same |R_w| items; they stay hot in
            // the processor cache, so they are charged once.
            IsolationLevel::Snapshot => req.write_rows.len(),
            // WSI loads |R_r| items to check and |R_w| items to update.
            IsolationLevel::WriteSnapshot => {
                if req.is_read_only() {
                    0
                } else {
                    req.read_rows.len() + req.write_rows.len()
                }
            }
        };
        let read_only = req.is_read_only();
        let service = if read_only {
            // §5.1: the oracle "commits without performing any computation".
            self.config.start_request
        } else {
            self.config.commit_service(items)
        };
        let cpu_done = self.cpu.submit(now, service);
        let start_ts = req.start_ts;
        let outcome = self.core.commit(req);

        if read_only {
            return CommitResponse {
                outcome,
                cpu_done,
                ready: Some(cpu_done),
                flush: None,
            };
        }

        // Persist the decision; the response waits for durability.
        let record = match outcome {
            CommitOutcome::Committed(commit_ts) => TxnLogRecord::Commit {
                start_ts: start_ts.raw(),
                commit_ts: commit_ts.raw(),
                // Row identifiers were consumed by `core.commit`; recovery
                // rebuilds `lastCommit` from the re-encoded write set kept in
                // the request. To avoid a second clone on the hot path, the
                // cluster keeps row sets in the request it still owns;
                // rebuild here from the commit-table instead is impossible,
                // so the record carries no rows in the *simulated* ledger and
                // the functional recovery path uses `recovered_rows` below.
                write_rows: Vec::new(),
            },
            CommitOutcome::Aborted(_) => TxnLogRecord::Abort {
                start_ts: start_ts.raw(),
            },
        };
        self.append_record(record, cpu_done);
        self.pending.push((start_ts, outcome));

        // Batch trigger check (Appendix A): size, or ≥ 5 ms since the last
        // trigger. A lone commit in an idle oracle flushes immediately —
        // which is why §6.2 measures 4.1 ms (≈ one quorum write), not
        // 4.1 + 5 ms.
        let trip_size = self.pending_bytes >= self.config.batch.max_bytes;
        let trip_time =
            cpu_done.saturating_sub(self.last_trigger).as_us() >= self.config.batch.max_delay_us;
        let flush = if trip_size || trip_time {
            Some(self.flush(cpu_done))
        } else {
            None
        };
        CommitResponse {
            outcome,
            cpu_done,
            ready: None,
            flush,
        }
    }

    fn append_record(&mut self, record: TxnLogRecord, now: SimTime) {
        let bytes = encode_record(&record);
        self.pending_bytes += bytes.len();
        self.ledger.append(bytes, now.as_us());
        self.stats.records += 1;
    }

    /// The deadline by which the pending batch must flush (the 5 ms time
    /// trigger), if anything is pending. The simulation schedules a flush
    /// event here unless a size trigger fires first.
    pub fn next_flush_deadline(&self) -> Option<SimTime> {
        if self.pending.is_empty() && self.ledger.pending_records() == 0 {
            None
        } else {
            Some(SimTime::from_us(
                self.last_trigger.as_us() + self.config.batch.max_delay_us,
            ))
        }
    }

    /// Flushes the pending batch at `now`, returning when it is durable and
    /// which decisions it carries. Call via the size trigger (from
    /// [`OracleServer::handle_commit`]'s return), or at
    /// [`OracleServer::next_flush_deadline`].
    pub fn flush(&mut self, now: SimTime) -> FlushResult {
        self.last_trigger = now;
        self.pending_bytes = 0;
        let decisions = std::mem::take(&mut self.pending);
        if self.ledger.pending_records() > 0 {
            self.ledger
                .flush(now.as_us())
                .expect("simulated ledger quorum is healthy");
            self.stats.flushes += 1;
        }
        let ready = self.wal_station.submit(now, self.config.wal_write);
        FlushResult { ready, decisions }
    }

    /// Point-in-time snapshot of the replicated log (for crash tests).
    pub fn ledger_snapshot(&self) -> Ledger {
        self.ledger.clone()
    }

    /// Rebuilds an oracle from a recovered ledger plus the per-commit row
    /// sets the data tier knows (the simulated ledger elides row lists to
    /// keep the hot path allocation-free; a production record carries them —
    /// see `wsi-store`'s recovery, which does).
    ///
    /// `recovered_rows` maps a committed transaction's start timestamp to
    /// its modified-row identifiers.
    pub fn recover(
        config: OracleConfig,
        ledger: &Ledger,
        recovered_rows: impl Fn(Timestamp) -> Vec<wsi_core::RowId>,
    ) -> Self {
        let mut server = OracleServer::new(config);
        let payloads = ledger.recover();
        let records = decode_records(&payloads).expect("simulated ledger is uncorrupted");
        for record in records {
            match record {
                TxnLogRecord::Commit {
                    start_ts,
                    commit_ts,
                    ..
                } => {
                    let start = Timestamp(start_ts);
                    let rows = recovered_rows(start);
                    server
                        .core
                        .replay_commit(start, Timestamp(commit_ts), &rows);
                }
                TxnLogRecord::Abort { start_ts } => {
                    server.core.replay_abort(Timestamp(start_ts));
                }
                TxnLogRecord::TimestampReservation { upto } => {
                    // Resume past the reservation: no timestamp may repeat.
                    server.core.advance_timestamps(Timestamp(upto));
                    server.ts_reserved_upto = Timestamp(upto);
                }
            }
        }
        server
    }

    /// Cumulative counters.
    pub fn stats(&self) -> OracleServerStats {
        self.stats
    }

    /// CPU (critical-section) utilization over `elapsed`.
    pub fn cpu_utilization(&self, elapsed: SimTime) -> f64 {
        self.cpu.utilization(elapsed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsi_core::RowId;

    fn cfg(level: IsolationLevel) -> OracleConfig {
        OracleConfig::paper_default(level)
    }

    fn rows(ids: &[u64]) -> Vec<RowId> {
        ids.iter().map(|&i| RowId(i)).collect()
    }

    #[test]
    fn lone_commit_latency_is_one_wal_write() {
        let mut o = OracleServer::new(cfg(IsolationLevel::WriteSnapshot));
        let now = SimTime::from_ms(100); // long after the last trigger
        let s = o.handle_start(now);
        let resp = o.handle_commit(
            SimTime::from_ms(101),
            CommitRequest::new(s.ts, rows(&[1]), rows(&[2])),
        );
        let flush = resp.flush.expect("idle oracle flushes immediately");
        let latency = flush.ready - SimTime::from_ms(101);
        let ms = latency.as_ms_f64();
        assert!((3.9..4.3).contains(&ms), "commit latency {ms} ms");
        assert_eq!(flush.decisions.len(), 1);
        assert!(flush.decisions[0].1.is_committed());
    }

    #[test]
    fn back_to_back_commits_batch_until_deadline() {
        let mut o = OracleServer::new(cfg(IsolationLevel::WriteSnapshot));
        // Commit 1 at t=6 ms: immediate flush (≥ 5 ms since trigger at 0).
        let s1 = o.handle_start(SimTime::from_ms(6));
        let r1 = o.handle_commit(
            SimTime::from_ms(6),
            CommitRequest::new(s1.ts, vec![], rows(&[1])),
        );
        assert!(r1.flush.is_some());
        // Commit 2 arrives 1 ms later: batched, no immediate flush.
        let s2 = o.handle_start(SimTime::from_ms(7));
        let r2 = o.handle_commit(
            SimTime::from_ms(7),
            CommitRequest::new(s2.ts, vec![], rows(&[2])),
        );
        assert!(r2.flush.is_none());
        let deadline = o.next_flush_deadline().expect("pending record");
        assert!(deadline.as_ms_f64() >= 11.0, "deadline {deadline}");
        let flush = o.flush(deadline);
        assert_eq!(flush.decisions.len(), 1);
    }

    #[test]
    fn size_trigger_flushes_a_full_batch() {
        let mut o = OracleServer::new(cfg(IsolationLevel::WriteSnapshot));
        let mut flushed = None;
        let now = SimTime::from_ms(6);
        // Abort records are 9 bytes, commit records 21; pack until 1 KB.
        for i in 0..60 {
            let s = o.handle_start(now);
            let r = o.handle_commit(now, CommitRequest::new(s.ts, vec![], rows(&[i])));
            if let Some(f) = r.flush {
                if !f.decisions.is_empty() && f.decisions.len() > 1 {
                    flushed = Some(f);
                    break;
                }
            }
        }
        let f = flushed.expect("size trigger must fire within 60 commits");
        assert!(
            f.decisions.len() > 10,
            "batched {} decisions",
            f.decisions.len()
        );
    }

    #[test]
    fn read_only_commit_responds_immediately_without_wal() {
        let mut o = OracleServer::new(cfg(IsolationLevel::WriteSnapshot));
        let s = o.handle_start(SimTime::from_ms(1));
        let records_before = o.stats().records;
        let r = o.handle_commit(SimTime::from_ms(1), CommitRequest::read_only(s.ts));
        assert!(r.outcome.is_committed());
        assert_eq!(r.ready, Some(r.cpu_done));
        assert_eq!(o.stats().records, records_before);
    }

    #[test]
    fn wsi_critical_section_costs_more_than_si() {
        let mut wsi = OracleServer::new(cfg(IsolationLevel::WriteSnapshot));
        let mut si = OracleServer::new(cfg(IsolationLevel::Snapshot));
        let now = SimTime::from_ms(10);
        let req = |ts| CommitRequest::new(ts, rows(&[1, 2, 3, 4, 5]), rows(&[6, 7, 8, 9, 10]));
        let sw = wsi.handle_start(now);
        let ss = si.handle_start(now);
        let rw = wsi.handle_commit(now, req(sw.ts));
        let rs = si.handle_commit(now, req(ss.ts));
        let wsi_cpu = rw.cpu_done - now;
        let si_cpu = rs.cpu_done - now;
        assert!(wsi_cpu > si_cpu, "wsi {wsi_cpu} vs si {si_cpu}");
    }

    #[test]
    fn start_requests_do_not_wait_for_persistence() {
        let mut o = OracleServer::new(cfg(IsolationLevel::WriteSnapshot));
        let r = o.handle_start(SimTime::from_ms(1));
        // Done within the critical-section cost, no WAL wait.
        assert!((r.done - SimTime::from_ms(1)).as_us() <= 2);
        assert_eq!(o.stats().ts_reservations, 1);
        // Subsequent starts ride the existing reservation.
        for _ in 0..100 {
            o.handle_start(SimTime::from_ms(2));
        }
        assert_eq!(o.stats().ts_reservations, 1);
    }

    #[test]
    fn register_obs_exposes_core_and_wal_series() {
        let mut o = OracleServer::new(cfg(IsolationLevel::WriteSnapshot));
        let registry = wsi_obs::Registry::new();
        o.register_obs(&registry);
        let now = SimTime::from_ms(6);
        let s = o.handle_start(now);
        let r = o.handle_commit(now, CommitRequest::new(s.ts, rows(&[1, 2]), rows(&[3])));
        assert!(r.outcome.is_committed());
        let snap = registry.snapshot();
        assert_eq!(snap.counters.get("oracle_begins_total"), Some(&1));
        assert_eq!(snap.counters.get("oracle_commits_total"), Some(&1));
        // WSI checked both read rows.
        assert_eq!(snap.counters.get("oracle_rows_checked_total"), Some(&2));
        // The immediate flush carried the commit and reservation records.
        assert_eq!(snap.counters.get("wal_flushes_total"), Some(&1));
        assert!(snap.counters.get("wal_records_total").copied() >= Some(2));
    }

    #[test]
    fn recovery_restores_decisions_and_timestamps() {
        let mut o = OracleServer::new(cfg(IsolationLevel::WriteSnapshot));
        let now = SimTime::from_ms(6);
        let s1 = o.handle_start(now);
        let s2 = o.handle_start(now);
        let r1 = o.handle_commit(now, CommitRequest::new(s1.ts, vec![], rows(&[7])));
        let c1 = r1.outcome.commit_ts().unwrap();
        o.flush(SimTime::from_ms(20));

        let ledger = o.ledger_snapshot();
        let recovered = OracleServer::recover(cfg(IsolationLevel::WriteSnapshot), &ledger, |ts| {
            if ts == s1.ts {
                rows(&[7])
            } else {
                vec![]
            }
        });
        // The recovered oracle refuses the same conflicting commit the old
        // one would have refused.
        let mut recovered = recovered;
        let resp = recovered.handle_commit(
            SimTime::from_ms(30),
            CommitRequest::new(s2.ts, rows(&[7]), rows(&[8])),
        );
        assert!(resp.outcome.is_aborted());
        // And never reissues timestamps at or below the old reservation.
        let fresh = recovered.handle_start(SimTime::from_ms(31));
        assert!(fresh.ts > c1);
    }
}

//! Property tests of the simulation kernel's invariants.

use proptest::prelude::*;
use wsi_sim::{EventQueue, SimRng, SimTime, Station, Zipfian};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Events pop in nondecreasing time order regardless of insertion order,
    /// and same-time events pop in insertion order.
    #[test]
    fn event_queue_is_a_stable_priority_queue(
        delays in prop::collection::vec(0u64..1000, 1..200),
    ) {
        let mut q = EventQueue::new();
        for (i, &d) in delays.iter().enumerate() {
            q.schedule(SimTime(d), i);
        }
        let mut last_time = SimTime::ZERO;
        let mut last_seq_at_time: Option<usize> = None;
        while let Some((t, i)) = q.pop() {
            prop_assert!(t >= last_time);
            if t == last_time {
                if let Some(prev) = last_seq_at_time {
                    prop_assert!(
                        delays[prev] != delays[i] || prev < i,
                        "same-time events must pop in schedule order"
                    );
                }
            } else {
                last_time = t;
            }
            last_seq_at_time = Some(i);
        }
    }

    /// A station never completes a job before `arrival + service`, and a
    /// single-server station's completions are totally ordered.
    #[test]
    fn station_respects_service_demands(
        jobs in prop::collection::vec((0u64..10_000, 1u64..500), 1..100),
        servers in 1usize..4,
    ) {
        let mut sorted = jobs.clone();
        sorted.sort_unstable();
        let mut station = Station::new(servers);
        let mut prev_done = SimTime::ZERO;
        for &(arrive, service) in &sorted {
            let done = station.submit(SimTime(arrive), SimTime(service));
            prop_assert!(done >= SimTime(arrive + service));
            if servers == 1 {
                prop_assert!(done >= prev_done, "single server is FIFO");
                prev_done = done;
            }
        }
        // Conservation: total busy time equals the sum of service demands.
        let total: u64 = sorted.iter().map(|&(_, s)| s).sum();
        prop_assert_eq!(station.busy_time(), SimTime(total));
    }

    /// Zipfian draws stay in bounds and rank popularity is monotone for the
    /// head of the distribution.
    #[test]
    fn zipfian_bounds_and_head_monotonicity(
        items in 10u64..10_000,
        seed in any::<u64>(),
    ) {
        let mut z = Zipfian::new(items);
        let mut rng = SimRng::new(seed);
        let mut counts = [0u32; 3];
        for _ in 0..3_000 {
            let v = z.next(&mut rng);
            prop_assert!(v < items);
            if (v as usize) < counts.len() {
                counts[v as usize] += 1;
            }
        }
        // Rank 0 should beat rank 2 by a comfortable margin in 3000 draws.
        prop_assert!(
            counts[0] + 20 >= counts[2],
            "rank0 {} rank2 {}",
            counts[0],
            counts[2]
        );
    }

    /// Forked RNG streams are reproducible and independent of sibling order.
    #[test]
    fn rng_forks_are_order_independent(seed in any::<u64>(), a in 0u64..512, b in 0u64..512) {
        prop_assume!(a != b);
        let root = SimRng::new(seed);
        let mut fork_a_first = root.fork(a);
        let _ = root.fork(b);
        let mut fork_a_second = SimRng::new(seed).fork(a);
        for _ in 0..16 {
            prop_assert_eq!(fork_a_first.below(1 << 30), fork_a_second.below(1 << 30));
        }
    }

    /// Exponential samples are nonnegative and the mean is in the right
    /// ballpark for a large sample.
    #[test]
    fn exponential_sanity(seed in any::<u64>()) {
        let mut rng = SimRng::new(seed);
        let mean = SimTime::from_ms(4);
        let n = 4_000u64;
        let total: u64 = (0..n).map(|_| rng.exponential(mean).as_us()).sum();
        let observed = total as f64 / n as f64;
        prop_assert!((2_500.0..6_000.0).contains(&observed), "mean {observed}");
    }
}

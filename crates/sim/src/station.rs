//! FIFO service stations: the queueing building block.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A `c`-server FIFO queueing station.
///
/// Jobs are submitted with their service demand; the station returns the
/// completion time, accounting for waiting until one of the `c` servers is
/// free. This models every congestible resource in the cluster simulation —
/// the status oracle's single-threaded critical section (`c = 1`, §6.3),
/// a region server's disks and request handlers, the WAL ensemble — and
/// produces the latency-vs-throughput hockey sticks of Figures 5–9 from
/// first principles.
///
/// # Example
///
/// ```
/// use wsi_sim::{SimTime, Station};
///
/// let mut disk = Station::new(1);
/// // Two 10 ms reads arriving together: the second queues behind the first.
/// let d1 = disk.submit(SimTime::ZERO, SimTime::from_ms(10));
/// let d2 = disk.submit(SimTime::ZERO, SimTime::from_ms(10));
/// assert_eq!(d1, SimTime::from_ms(10));
/// assert_eq!(d2, SimTime::from_ms(20));
/// ```
#[derive(Debug, Clone)]
pub struct Station {
    /// `free_at` times of the `c` servers (min-heap: earliest-free first).
    servers: BinaryHeap<Reverse<SimTime>>,
    jobs: u64,
    busy_time: SimTime,
    wait_time: SimTime,
}

impl Station {
    /// Creates a station with `servers` parallel servers.
    ///
    /// # Panics
    ///
    /// Panics if `servers` is zero.
    pub fn new(servers: usize) -> Self {
        assert!(servers > 0, "a station needs at least one server");
        Station {
            servers: (0..servers).map(|_| Reverse(SimTime::ZERO)).collect(),
            jobs: 0,
            busy_time: SimTime::ZERO,
            wait_time: SimTime::ZERO,
        }
    }

    /// Submits a job arriving at `now` demanding `service` time; returns its
    /// completion time.
    pub fn submit(&mut self, now: SimTime, service: SimTime) -> SimTime {
        let Reverse(free_at) = self.servers.pop().expect("at least one server");
        let start = now.max(free_at);
        let done = start + service;
        self.servers.push(Reverse(done));
        self.jobs += 1;
        self.busy_time += service;
        self.wait_time += start - now;
        done
    }

    /// The earliest time a newly arriving job could begin service.
    pub fn earliest_start(&self, now: SimTime) -> SimTime {
        let Reverse(free_at) = *self.servers.peek().expect("at least one server");
        now.max(free_at)
    }

    /// Number of jobs submitted so far.
    pub fn jobs(&self) -> u64 {
        self.jobs
    }

    /// Cumulative service time across all jobs.
    pub fn busy_time(&self) -> SimTime {
        self.busy_time
    }

    /// Cumulative time jobs spent waiting for a free server.
    pub fn wait_time(&self) -> SimTime {
        self.wait_time
    }

    /// Mean utilization over `elapsed` of the station's aggregate capacity.
    pub fn utilization(&self, elapsed: SimTime) -> f64 {
        if elapsed == SimTime::ZERO {
            return 0.0;
        }
        let capacity = elapsed.as_us() as f64 * self.servers.len() as f64;
        (self.busy_time.as_us() as f64 / capacity).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_server_serializes_jobs() {
        let mut s = Station::new(1);
        assert_eq!(s.submit(SimTime(0), SimTime(5)), SimTime(5));
        assert_eq!(s.submit(SimTime(0), SimTime(5)), SimTime(10));
        assert_eq!(s.submit(SimTime(20), SimTime(5)), SimTime(25)); // idle gap
        assert_eq!(s.jobs(), 3);
        assert_eq!(s.busy_time(), SimTime(15));
        assert_eq!(s.wait_time(), SimTime(5)); // only job 2 waited
    }

    #[test]
    fn parallel_servers_run_concurrently() {
        let mut s = Station::new(2);
        assert_eq!(s.submit(SimTime(0), SimTime(10)), SimTime(10));
        assert_eq!(s.submit(SimTime(0), SimTime(10)), SimTime(10));
        assert_eq!(s.submit(SimTime(0), SimTime(10)), SimTime(20)); // third queues
    }

    #[test]
    fn earliest_start_previews_queueing() {
        let mut s = Station::new(1);
        s.submit(SimTime(0), SimTime(100));
        assert_eq!(s.earliest_start(SimTime(30)), SimTime(100));
        assert_eq!(s.earliest_start(SimTime(200)), SimTime(200));
    }

    #[test]
    fn utilization_saturates_at_one() {
        let mut s = Station::new(1);
        for _ in 0..10 {
            s.submit(SimTime(0), SimTime(100));
        }
        assert!((s.utilization(SimTime(500)) - 1.0).abs() < 1e-12);
        assert!((s.utilization(SimTime(2000)) - 0.5).abs() < 1e-12);
        assert_eq!(Station::new(1).utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_servers_rejected() {
        let _ = Station::new(0);
    }
}

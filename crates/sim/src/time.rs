//! Virtual time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, in microseconds since simulation start.
///
/// Microsecond resolution comfortably covers the paper's scales: the finest
/// modeled latency is the status oracle's per-row memory probe (tens of
/// nanoseconds, aggregated per request to ≥ 1 µs) and the coarsest is the
/// 38.8 ms disk read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs from whole microseconds.
    pub const fn from_us(us: u64) -> SimTime {
        SimTime(us)
    }

    /// Constructs from whole milliseconds.
    pub const fn from_ms(ms: u64) -> SimTime {
        SimTime(ms * 1_000)
    }

    /// Constructs from whole seconds.
    pub const fn from_secs(s: u64) -> SimTime {
        SimTime(s * 1_000_000)
    }

    /// Constructs from fractional milliseconds (e.g. the paper's 38.8 ms
    /// random-read latency), rounding to the nearest microsecond.
    pub fn from_ms_f64(ms: f64) -> SimTime {
        debug_assert!(ms >= 0.0, "durations are non-negative");
        SimTime((ms * 1_000.0).round() as u64)
    }

    /// The raw microsecond count.
    pub const fn as_us(self) -> u64 {
        self.0
    }

    /// As fractional milliseconds.
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// As fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating difference.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("time went backwards"))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.as_ms_f64())
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_ms(5).as_us(), 5_000);
        assert_eq!(SimTime::from_secs(2).as_us(), 2_000_000);
        assert_eq!(SimTime::from_ms_f64(38.8).as_us(), 38_800);
        assert_eq!(SimTime::from_ms_f64(1.13).as_us(), 1_130);
        assert!((SimTime(2_500).as_ms_f64() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime(100) + SimTime(50);
        assert_eq!(a, SimTime(150));
        assert_eq!(a - SimTime(150), SimTime::ZERO);
        assert_eq!(SimTime(10).saturating_sub(SimTime(20)), SimTime::ZERO);
        let mut b = SimTime(1);
        b += SimTime(2);
        assert_eq!(b, SimTime(3));
    }

    #[test]
    #[should_panic(expected = "time went backwards")]
    fn sub_underflow_panics() {
        let _ = SimTime(1) - SimTime(2);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimTime(12).to_string(), "12us");
        assert_eq!(SimTime(1_500).to_string(), "1.500ms");
        assert_eq!(SimTime(2_500_000).to_string(), "2.500s");
    }
}

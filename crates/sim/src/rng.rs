//! Seeded randomness for simulations.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::time::SimTime;

/// A deterministic random source for one simulation (or one simulated
/// component).
///
/// Thin wrapper over a seeded [`SmallRng`] with the draws the workloads
/// need. Use [`SimRng::fork`] to derive independent streams for independent
/// components so that adding draws to one does not perturb another — the
/// standard trick for keeping parameter sweeps comparable across runs.
#[derive(Debug, Clone)]
pub struct SimRng {
    rng: SmallRng,
    seed: u64,
}

impl SimRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            rng: SmallRng::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed this generator was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent stream labelled `stream`.
    pub fn fork(&self, stream: u64) -> SimRng {
        // SplitMix64-style mixing keeps forked seeds well-separated even for
        // consecutive stream ids.
        let mut z = self.seed ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        SimRng::new(z ^ (z >> 31))
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        self.rng.gen_range(0..n)
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    pub fn between(&mut self, lo: u64, hi: u64) -> u64 {
        self.rng.gen_range(lo..=hi)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.rng.gen::<f64>()
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        self.rng.gen_bool(p.clamp(0.0, 1.0))
    }

    /// Exponentially distributed duration with the given mean — the standard
    /// inter-arrival model for open-loop traffic.
    pub fn exponential(&mut self, mean: SimTime) -> SimTime {
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        SimTime((-u.ln() * mean.as_us() as f64).round() as u64)
    }

    /// Duration uniformly jittered within `±fraction` of `base` (service
    /// time noise).
    pub fn jittered(&mut self, base: SimTime, fraction: f64) -> SimTime {
        let f = fraction.clamp(0.0, 1.0);
        let spread = base.as_us() as f64 * f;
        let delta = self.rng.gen_range(-spread..=spread);
        SimTime(((base.as_us() as f64) + delta).max(0.0).round() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.below(1000), b.below(1000));
        }
    }

    #[test]
    fn forks_are_independent_of_parent_consumption() {
        let a = SimRng::new(7);
        let mut parent = SimRng::new(7);
        parent.below(10); // consume from the parent
        let f1 = a.fork(3);
        let f2 = parent.fork(3);
        let mut f1 = f1;
        let mut f2 = f2;
        assert_eq!(f1.below(1 << 30), f2.below(1 << 30));
    }

    #[test]
    fn forks_differ_across_streams() {
        let root = SimRng::new(7);
        let mut s1 = root.fork(1);
        let mut s2 = root.fork(2);
        let a: Vec<u64> = (0..10).map(|_| s1.below(1 << 20)).collect();
        let b: Vec<u64> = (0..10).map(|_| s2.below(1 << 20)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn exponential_mean_is_roughly_right() {
        let mut rng = SimRng::new(42);
        let mean = SimTime::from_ms(10);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| rng.exponential(mean).as_us()).sum();
        let observed = total as f64 / n as f64;
        assert!((observed - 10_000.0).abs() < 300.0, "mean {observed}");
    }

    #[test]
    fn jitter_stays_in_band() {
        let mut rng = SimRng::new(1);
        let base = SimTime(1_000);
        for _ in 0..1000 {
            let v = rng.jittered(base, 0.2).as_us();
            assert!((800..=1200).contains(&v), "{v}");
        }
    }

    #[test]
    fn bounds_respected() {
        let mut rng = SimRng::new(1);
        for _ in 0..1000 {
            assert!(rng.below(5) < 5);
            let x = rng.between(3, 7);
            assert!((3..=7).contains(&x));
            let u = rng.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }
}

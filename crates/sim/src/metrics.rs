//! Measurement: latency distributions, throughput, and figure series.

use wsi_obs::{ExactHistogram, HistogramSnapshot};

use crate::time::SimTime;

/// An exact latency distribution (samples kept in full).
///
/// Simulation runs produce at most a few hundred thousand transactions, so
/// exact storage (8 bytes/sample) is cheaper than the complexity of a
/// sketch, and percentiles are exact. Backed by [`wsi_obs::ExactHistogram`]
/// so the simulator and the live store share one percentile definition
/// (nearest rank) and one exposition pipeline.
#[derive(Debug, Clone, Default)]
pub struct LatencyStats {
    samples_us: ExactHistogram,
}

impl LatencyStats {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: SimTime) {
        self.samples_us.record(latency.as_us());
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples_us.count()
    }

    /// Mean latency in milliseconds (0 when empty).
    pub fn mean_ms(&self) -> f64 {
        self.samples_us.mean() / 1_000.0
    }

    /// Exact percentile (`0.0 ..= 1.0`) in milliseconds, by the
    /// nearest-rank method (0 when empty).
    pub fn percentile_ms(&mut self, p: f64) -> f64 {
        self.samples_us.percentile(p) as f64 / 1_000.0
    }

    /// Folds the samples into a bucketed [`HistogramSnapshot`] for the
    /// shared `wsi-obs` exposition formats (Prometheus text, JSON).
    pub fn to_snapshot(&self) -> HistogramSnapshot {
        self.samples_us.to_snapshot()
    }

    /// Median in milliseconds.
    pub fn p50_ms(&mut self) -> f64 {
        self.percentile_ms(0.50)
    }

    /// 99th percentile in milliseconds.
    pub fn p99_ms(&mut self) -> f64 {
        self.percentile_ms(0.99)
    }

    /// Maximum in milliseconds (0 when empty).
    pub fn max_ms(&self) -> f64 {
        self.samples_us.max() as f64 / 1_000.0
    }
}

/// Throughput accounting over a measurement window.
#[derive(Debug, Clone, Copy, Default)]
pub struct Throughput {
    /// Completed units (e.g. committed transactions).
    pub completed: u64,
    /// Window length.
    pub elapsed: SimTime,
}

impl Throughput {
    /// Units per second (0 for an empty window).
    pub fn per_second(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.completed as f64 / secs
        }
    }
}

/// One measured point of a figure: a load level with its outcome metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct Point {
    /// The swept parameter (e.g. number of clients).
    pub load: f64,
    /// Throughput in transactions per second.
    pub tps: f64,
    /// Mean latency in milliseconds.
    pub latency_ms: f64,
    /// Abort rate in `[0, 1]`.
    pub abort_rate: f64,
}

/// A labelled data series, one per curve in a figure.
#[derive(Debug, Clone, Default)]
pub struct Series {
    /// Curve label (e.g. "wsi" / "si").
    pub label: String,
    /// Measured points in sweep order.
    pub points: Vec<Point>,
}

impl Series {
    /// Creates an empty series.
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, point: Point) {
        self.points.push(point);
    }

    /// Renders as CSV rows `label,load,tps,latency_ms,abort_rate`.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        for p in &self.points {
            out.push_str(&format!(
                "{},{},{:.3},{:.3},{:.4}\n",
                self.label, p.load, p.tps, p.latency_ms, p.abort_rate
            ));
        }
        out
    }

    /// Maximum throughput across the sweep (the saturation level).
    pub fn peak_tps(&self) -> f64 {
        self.points.iter().map(|p| p.tps).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_percentiles_are_exact() {
        let mut l = LatencyStats::new();
        for v in [5, 1, 3, 2, 4] {
            l.record(SimTime::from_ms(v));
        }
        assert_eq!(l.count(), 5);
        assert!((l.mean_ms() - 3.0).abs() < 1e-9);
        assert!((l.p50_ms() - 3.0).abs() < 1e-9);
        assert!((l.percentile_ms(1.0) - 5.0).abs() < 1e-9);
        assert!((l.percentile_ms(0.0) - 1.0).abs() < 1e-9);
        assert!((l.max_ms() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_are_zero() {
        let mut l = LatencyStats::new();
        assert_eq!(l.count(), 0);
        assert_eq!(l.mean_ms(), 0.0);
        assert_eq!(l.p99_ms(), 0.0);
        assert_eq!(l.max_ms(), 0.0);
    }

    #[test]
    fn recording_after_percentile_resorts() {
        let mut l = LatencyStats::new();
        l.record(SimTime::from_ms(10));
        let _ = l.p50_ms();
        l.record(SimTime::from_ms(1));
        assert!((l.percentile_ms(0.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn snapshot_bridge_preserves_count_and_extremes() {
        let mut l = LatencyStats::new();
        for v in [5, 1, 3, 2, 4] {
            l.record(SimTime::from_ms(v));
        }
        let snap = l.to_snapshot();
        assert_eq!(snap.count, 5);
        assert_eq!(snap.min, 1_000);
        assert_eq!(snap.max, 5_000);
    }

    #[test]
    fn throughput_per_second() {
        let t = Throughput {
            completed: 500,
            elapsed: SimTime::from_secs(2),
        };
        assert!((t.per_second() - 250.0).abs() < 1e-9);
        assert_eq!(Throughput::default().per_second(), 0.0);
    }

    #[test]
    fn series_csv_and_peak() {
        let mut s = Series::new("wsi");
        s.push(Point {
            load: 5.0,
            tps: 100.0,
            latency_ms: 12.5,
            abort_rate: 0.01,
        });
        s.push(Point {
            load: 10.0,
            tps: 180.0,
            latency_ms: 20.0,
            abort_rate: 0.02,
        });
        let csv = s.to_csv();
        assert!(csv.contains("wsi,5,100.000,12.500,0.0100"));
        assert_eq!(csv.lines().count(), 2);
        assert!((s.peak_tps() - 180.0).abs() < 1e-9);
    }
}

//! YCSB's skewed key generators (Cooper et al., SoCC'10).
//!
//! The paper's concurrency experiments (§6.5) use YCSB's *zipfian*
//! distribution — "some items are extremely popular" — and *zipfianLatest*,
//! where "the popular items … are among the recently inserted data". These
//! generators reproduce YCSB's exact constructions: Gray et al.'s rejection-
//! free zipfian sampler, the scrambled variant that spreads the hot items
//! across the key space, and the latest variant that mirrors the zipfian
//! onto the tail of a growing key space.

use crate::rng::SimRng;

/// The YCSB default skew parameter.
pub const YCSB_ZIPFIAN_CONSTANT: f64 = 0.99;

/// Zipfian generator over `[0, items)`: rank 0 is the most popular.
///
/// Uses the Gray et al. "Quickly generating billion-record synthetic
/// databases" algorithm, as in YCSB: O(n) precomputation of `zeta(n)`, O(1)
/// per sample. Supports growing the item count incrementally (needed by
/// [`LatestGenerator`]), extending `zeta` rather than recomputing it.
#[derive(Debug, Clone)]
pub struct Zipfian {
    items: u64,
    theta: f64,
    zeta2theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
}

fn zeta_range(from: u64, to: u64, theta: f64, base: f64) -> f64 {
    let mut sum = base;
    for i in from..to {
        sum += 1.0 / ((i + 1) as f64).powf(theta);
    }
    sum
}

impl Zipfian {
    /// Creates a generator over `[0, items)` with the YCSB constant 0.99.
    ///
    /// # Panics
    ///
    /// Panics if `items == 0`.
    pub fn new(items: u64) -> Self {
        Self::with_theta(items, YCSB_ZIPFIAN_CONSTANT)
    }

    /// Creates a generator with an explicit skew parameter `theta < 1`.
    ///
    /// # Panics
    ///
    /// Panics if `items == 0` or `theta` is not in `(0, 1)`.
    pub fn with_theta(items: u64, theta: f64) -> Self {
        assert!(items > 0, "zipfian needs at least one item");
        assert!((0.0..1.0).contains(&theta), "theta must be in (0, 1)");
        let zeta2theta = zeta_range(0, 2.min(items), theta, 0.0);
        let zetan = zeta_range(0, items, theta, 0.0);
        let mut z = Zipfian {
            items,
            theta,
            zeta2theta,
            alpha: 1.0 / (1.0 - theta),
            zetan,
            eta: 0.0,
        };
        z.recompute_eta();
        z
    }

    fn recompute_eta(&mut self) {
        self.eta = (1.0 - (2.0 / self.items as f64).powf(1.0 - self.theta))
            / (1.0 - self.zeta2theta / self.zetan);
    }

    /// Number of items currently covered.
    pub fn items(&self) -> u64 {
        self.items
    }

    /// Grows the item space to `items`, extending `zeta` incrementally.
    ///
    /// Shrinking is not supported (YCSB never removes items); calls with a
    /// smaller count are ignored.
    pub fn grow(&mut self, items: u64) {
        if items <= self.items {
            return;
        }
        self.zetan = zeta_range(self.items, items, self.theta, self.zetan);
        self.items = items;
        self.recompute_eta();
    }

    /// Draws a rank in `[0, items)`; rank 0 is the hottest.
    pub fn next(&mut self, rng: &mut SimRng) -> u64 {
        let u = rng.unit();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let rank = (self.items as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        rank.min(self.items - 1)
    }
}

/// Scrambled zipfian: zipfian popularity, but the popular items are spread
/// uniformly over the key space by hashing the rank (YCSB's
/// `ScrambledZipfianGenerator`). This is what YCSB's default "zipfian"
/// request distribution actually does, and what the paper's Figure 7/8
/// workload uses: hot rows land on random region servers.
#[derive(Debug, Clone)]
pub struct ScrambledZipfian {
    zipf: Zipfian,
    items: u64,
}

impl ScrambledZipfian {
    /// Creates a generator over `[0, items)`.
    pub fn new(items: u64) -> Self {
        ScrambledZipfian {
            zipf: Zipfian::new(items),
            items,
        }
    }

    /// Draws a key in `[0, items)`.
    pub fn next(&mut self, rng: &mut SimRng) -> u64 {
        let rank = self.zipf.next(rng);
        fnv64(rank) % self.items
    }
}

fn fnv64(x: u64) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for shift in (0..64).step_by(8) {
        h ^= (x >> shift) & 0xff;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// The "latest" distribution: zipfian-skewed toward the most recently
/// inserted key (YCSB's `SkewedLatestGenerator`). Key `max - 1` is the
/// hottest; inserts move the hot spot.
#[derive(Debug, Clone)]
pub struct LatestGenerator {
    zipf: Zipfian,
}

impl LatestGenerator {
    /// Creates a generator over the current key space `[0, items)`.
    pub fn new(items: u64) -> Self {
        LatestGenerator {
            zipf: Zipfian::new(items),
        }
    }

    /// Records that the key space grew to `items` (after inserts).
    pub fn grow(&mut self, items: u64) {
        self.zipf.grow(items);
    }

    /// Current key-space size.
    pub fn items(&self) -> u64 {
        self.zipf.items()
    }

    /// Draws a key in `[0, items)`, skewed toward `items - 1`.
    pub fn next(&mut self, rng: &mut SimRng) -> u64 {
        let items = self.zipf.items();
        items - 1 - self.zipf.next(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frequencies(samples: &[u64], items: u64) -> Vec<u64> {
        let mut counts = vec![0u64; items as usize];
        for &s in samples {
            counts[s as usize] += 1;
        }
        counts
    }

    #[test]
    fn zipfian_rank_zero_is_hottest() {
        let mut z = Zipfian::new(1000);
        let mut rng = SimRng::new(1);
        let samples: Vec<u64> = (0..50_000).map(|_| z.next(&mut rng)).collect();
        let counts = frequencies(&samples, 1000);
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[10]);
        assert!(
            counts[0] > samples.len() as u64 / 20,
            "rank 0 should take >5%"
        );
        assert!(samples.iter().all(|&s| s < 1000));
    }

    #[test]
    fn zipfian_theta_controls_skew() {
        let mut mild = Zipfian::with_theta(1000, 0.5);
        let mut hot = Zipfian::with_theta(1000, 0.99);
        let mut rng1 = SimRng::new(2);
        let mut rng2 = SimRng::new(2);
        let mild_top = (0..20_000).filter(|_| mild.next(&mut rng1) == 0).count();
        let hot_top = (0..20_000).filter(|_| hot.next(&mut rng2) == 0).count();
        assert!(hot_top > mild_top * 2);
    }

    #[test]
    fn grow_matches_fresh_generator() {
        let mut grown = Zipfian::new(100);
        grown.grow(1000);
        let fresh = Zipfian::new(1000);
        assert!((grown.zetan - fresh.zetan).abs() < 1e-9);
        assert!((grown.eta - fresh.eta).abs() < 1e-9);
        assert_eq!(grown.items(), 1000);
        // Shrinking is a no-op.
        grown.grow(10);
        assert_eq!(grown.items(), 1000);
    }

    #[test]
    fn scrambled_spreads_hot_keys() {
        let mut s = ScrambledZipfian::new(10_000);
        let mut rng = SimRng::new(3);
        let samples: Vec<u64> = (0..50_000).map(|_| s.next(&mut rng)).collect();
        assert!(samples.iter().all(|&k| k < 10_000));
        // The hottest key is no longer key 0 (scrambling moved it).
        let counts = frequencies(&samples, 10_000);
        let (hottest, _) = counts
            .iter()
            .enumerate()
            .max_by_key(|&(_, c)| c)
            .expect("nonempty");
        assert_ne!(hottest, 0);
        // Still heavily skewed: top key way above uniform share (5 samples).
        assert!(counts[hottest] > 1000);
    }

    #[test]
    fn latest_prefers_recent_keys() {
        let mut l = LatestGenerator::new(1000);
        let mut rng = SimRng::new(4);
        let samples: Vec<u64> = (0..20_000).map(|_| l.next(&mut rng)).collect();
        let newest_hits = samples.iter().filter(|&&k| k == 999).count();
        let oldest_hits = samples.iter().filter(|&&k| k < 100).count();
        assert!(
            newest_hits > 1000,
            "newest key must dominate: {newest_hits}"
        );
        assert!(newest_hits > oldest_hits);
    }

    #[test]
    fn latest_follows_inserts() {
        let mut l = LatestGenerator::new(100);
        let mut rng = SimRng::new(5);
        l.grow(200);
        let samples: Vec<u64> = (0..5_000).map(|_| l.next(&mut rng)).collect();
        assert!(samples.iter().all(|&k| k < 200));
        let hot = samples.iter().filter(|&&k| k >= 190).count();
        assert!(hot > 2_000, "hot spot must move to the new tail: {hot}");
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn zero_items_rejected() {
        let _ = Zipfian::new(0);
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn bad_theta_rejected() {
        let _ = Zipfian::with_theta(10, 1.5);
    }
}

//! The event queue driving a simulation.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A time-ordered queue of events with deterministic FIFO tie-breaking.
///
/// The simulation owner defines the event payload `E` and drains the queue:
///
/// ```
/// use wsi_sim::{EventQueue, SimTime};
///
/// #[derive(Debug, PartialEq)]
/// enum Ev { Ping, Pong }
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_ms(2), Ev::Pong);
/// q.schedule(SimTime::from_ms(1), Ev::Ping);
///
/// let (t1, e1) = q.pop().unwrap();
/// assert_eq!((t1, e1), (SimTime::from_ms(1), Ev::Ping));
/// assert_eq!(q.now(), SimTime::from_ms(1)); // clock advances on pop
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Scheduled<E>>>,
    now: SimTime,
    seq: u64,
}

#[derive(Debug)]
struct Scheduled<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Events at the same instant pop in scheduling order: determinism
        // does not depend on heap internals.
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
        }
    }

    /// Current virtual time: the timestamp of the last popped event.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past — an event scheduled before `now()`
    /// indicates a latency computation bug, and silently clamping it would
    /// corrupt causality.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(at >= self.now, "event scheduled in the past");
        self.heap.push(Reverse(Scheduled {
            at,
            seq: self.seq,
            event,
        }));
        self.seq += 1;
    }

    /// Schedules `event` after a relative `delay`.
    pub fn schedule_after(&mut self, delay: SimTime, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Pops the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(s) = self.heap.pop()?;
        self.now = s.at;
        Some((s.at, s.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(30), "c");
        q.schedule(SimTime(10), "a");
        q.schedule(SimTime(20), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_in_schedule_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime(5), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(10), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime(10));
        q.schedule_after(SimTime(5), ());
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime(15));
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime(10), ());
        q.pop();
        q.schedule(SimTime(5), ());
    }

    #[test]
    fn len_and_empty() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime(1), ());
        assert_eq!(q.len(), 1);
    }
}

//! Deterministic discrete-event simulation kernel.
//!
//! The paper's evaluation ran on a 34-machine cluster; this crate provides
//! the machinery to reproduce those experiments' *shapes* on one laptop
//! core, deterministically:
//!
//! * [`SimTime`] — a virtual microsecond clock;
//! * [`EventQueue`] — a priority queue of timestamped events with
//!   deterministic FIFO tie-breaking (the heart of the simulator: the
//!   cluster crate drains it in a loop);
//! * [`Station`] — a `c`-server FIFO service station, used to model CPUs
//!   (the status oracle's critical section), disks (HDFS block reads), and
//!   NICs; queueing delay and saturation knees emerge from it naturally;
//! * [`SimRng`] — a seeded RNG with the distributions the workloads need,
//!   including YCSB's **zipfian**, **scrambled-zipfian**, and **latest**
//!   generators (Cooper et al., SoCC'10), which the paper's §6.5 concurrency
//!   experiments are built on;
//! * [`metrics`] — latency histograms with percentiles, throughput
//!   accounting, and (x, y) series for the figure harness.
//!
//! Everything is deterministic given a seed: no wall-clock reads, no OS
//! threads, no hash-map iteration order leaks.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

mod event;
pub mod metrics;
mod rng;
mod station;
mod time;
mod zipf;

pub use event::EventQueue;
pub use rng::SimRng;
pub use station::Station;
pub use time::SimTime;
pub use zipf::{LatestGenerator, ScrambledZipfian, Zipfian};

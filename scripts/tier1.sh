#!/usr/bin/env bash
# Tier-1 gate: everything that must stay green on every commit.
#
#   scripts/tier1.sh
#
# Checks formatting, builds the workspace in release mode (the benches
# depend on it), runs the full test suite, holds the code to a
# warning-free clippy bar, and emits a metrics snapshot artifact from a
# short instrumented bench run (BENCH_store_concurrency_metrics.{json,prom})
# so every gate run leaves behind an inspectable picture of the commit
# path's counters and latency histograms.
set -euo pipefail

cd "$(dirname "$0")/.."

cargo fmt --all --check
cargo build --release --workspace
cargo test -q --workspace
cargo clippy --all-targets --workspace -- -D warnings

# Sharded-oracle gates: the serial/concurrent equivalence property tests
# must hold for SI, WSI, and the bounded Algorithm-3 variant, and the
# multi-threaded stress suite runs again in release mode (the debug run
# above is too slow to shake out interleavings).
cargo test -q -p wsi-core --test oracle_equivalence
cargo test -q --release -p wsi-store --test sharded_stress

# Partitioned-store gates: the sharded layout must be observationally
# equivalent to the single-lock layout (proptest over randomized
# interleavings, both isolation levels), and the 8-thread invariant herd
# runs in release mode against both layouts plus the metrics exposition.
cargo test -q -p wsi-store --test store_equivalence
cargo test -q --release -p wsi-store --test store_shard_stress

# Metrics snapshot artifact: small op count — this is an exposition smoke
# test, not a benchmark run.
./target/release/store_concurrency 200 0

# Every bench harness still runs and emits parseable artifacts.
scripts/bench_smoke.sh

#!/usr/bin/env bash
# Tier-1 gate: everything that must stay green on every commit.
#
#   scripts/tier1.sh
#
# Checks formatting, builds the workspace in release mode (the benches
# depend on it), runs the full test suite, holds the code to a
# warning-free clippy bar, and emits a metrics snapshot artifact from a
# short instrumented bench run (BENCH_store_concurrency_metrics.{json,prom})
# so every gate run leaves behind an inspectable picture of the commit
# path's counters and latency histograms.
set -euo pipefail

cd "$(dirname "$0")/.."

cargo fmt --all --check
cargo build --release --workspace
cargo test -q --workspace
cargo clippy --all-targets --workspace -- -D warnings

# Oracle-backend gates: the three-way Serial/Sharded/Batched equivalence
# property tests must hold for SI, WSI, and the bounded Algorithm-3
# variant (exact OracleStats equality, §5.2 ranges included), the batched
# backend's arrival-order determinism suite must pass, and both
# multi-threaded stress suites run again in release mode (the debug run
# above is too slow to shake out interleavings).
cargo test -q -p wsi-core --test oracle_equivalence
cargo test -q -p wsi-core --test batched_determinism
cargo test -q --release -p wsi-store --test sharded_stress
cargo test -q --release -p wsi-store --test batched_stress

# Batched-backend bench smoke: the epoch ring must drain a pipelined
# multi-thread sweep end-to-end (a liveness bug in the seal/plan/publish
# protocol hangs here, not in the unit tests). Runs in a scratch dir so
# the reduced-scale artifact never clobbers the committed full-scale one.
oracle_scaling_bin="$(pwd)/target/release/oracle_scaling"
batched_scratch="$(mktemp -d)"
(cd "$batched_scratch" && "$oracle_scaling_bin" 150 5 --backend batched >/dev/null)
rm -rf "$batched_scratch"

# Partitioned-store gates: every store layout (single-lock, sharded,
# lock-free arena flat and adaptive) must be observationally equivalent
# (proptest over randomized interleavings, both isolation levels), and the
# 8-thread invariant herd runs in release mode against all layouts —
# including the adaptive arena with a concurrent GC/reclamation thread —
# plus the metrics exposition.
cargo test -q -p wsi-store --test store_equivalence
cargo test -q --release -p wsi-store --test store_shard_stress

# Adaptive-arena bench smoke: the packed-node claim/seal/spill/consolidate
# protocol must drain a contended multi-thread sweep end-to-end (a
# liveness bug in seal's claim-drain spin or the consolidation splice
# hangs here, not in the single-threaded unit tests). Scratch dir so the
# reduced-scale artifact never clobbers the committed full-scale one.
mvcc_scaling_bin="$(pwd)/target/release/mvcc_scaling"
adaptive_scratch="$(mktemp -d)"
(cd "$adaptive_scratch" && "$mvcc_scaling_bin" 100 5 >/dev/null)
rm -rf "$adaptive_scratch"

# Lock-free protocol models, fast configuration: chain-head CAS publish
# vs. concurrent readers, epoch advance vs. retire/free, the packed-node
# claim/seal occupancy protocol, and the migration splice vs. a mid-chain
# reader. 32 fuzzed schedules per model keeps the gate seconds-scale; the
# default (64) runs when the suite is invoked without LOOM_MAX_ITERS.
LOOM_MAX_ITERS=32 cargo test -q --release -p wsi-store --features loom --test loom_protocols

# Deterministic simulation gate: the seeded fault matrix (every engine ×
# every fault plan × three seeds, both oracles armed on every run) plus
# the same-seed replay regression and the planted-bug canary. Any oracle
# panic prints a DST_SEED=… repro line — copy-paste it verbatim to replay
# the failing schedule byte-for-byte, and dumps the flight-recorder
# journal tail alongside it.
cargo test -q -p wsi-dst

# Flight-recorder gates: journal/counter/WAL reconciliation on all three
# engines, culprit-attributed abort forensics for each conflict class
# (WW under SI, RW under WSI, pivot under SSI), and the retry-report
# surface of Db::run. These run in the workspace suite above too; naming
# them here makes the observability bar explicit and keeps a local
# `cargo test -p wsi-store` green insufficient to skip them.
cargo test -q -p wsi-store --test obs_reconcile
cargo test -q -p wsi-store --test explain_abort
cargo test -q -p wsi-store --test retry_report

# Metrics snapshot artifact: small op count — this is an exposition smoke
# test, not a benchmark run.
./target/release/store_concurrency 200 0

# Every bench harness still runs and emits parseable artifacts.
scripts/bench_smoke.sh

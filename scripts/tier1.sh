#!/usr/bin/env bash
# Tier-1 gate: everything that must stay green on every commit.
#
#   scripts/tier1.sh
#
# Builds the workspace in release mode (the benches depend on it), runs the
# full test suite, and holds the code to a warning-free clippy bar.
set -euo pipefail

cd "$(dirname "$0")/.."

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --all-targets --workspace -- -D warnings

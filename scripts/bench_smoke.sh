#!/usr/bin/env bash
# Bench smoke: every wsi-bench binary must still run end-to-end, and every
# BENCH_*.json artifact it emits must parse and carry a non-empty `results`
# array. Seconds-scale op counts — this checks the harnesses, not the
# numbers; the committed full-scale artifacts are produced by the
# ops-per-thread defaults documented in each binary.
#
#   scripts/bench_smoke.sh [bin_dir]
#
# Runs inside a scratch directory so the reduced-scale runs never clobber
# the committed full-scale BENCH_*.json artifacts in the repo root.
set -euo pipefail

cd "$(dirname "$0")/.."
repo_root="$(pwd)"
bin="${1:-target/release}"
bin="$(cd "$bin" && pwd)"

scratch="$(mktemp -d)"
trap 'rm -rf "$scratch"' EXIT
cd "$scratch"

echo "== bench smoke (binaries from $bin, scratch $scratch) =="

# Simulation harnesses: stdout-only, no JSON artifact.
"$bin/figures" m1 >/dev/null
"$bin/probe" 10 uniform complex 100000 2 2 >/dev/null

# Artifact-producing benches, reduced scale.
"$bin/store_concurrency" 200 0 >/dev/null
"$bin/oracle_scaling" 150 5 >/dev/null
"$bin/mvcc_scaling" 100 5 >/dev/null
# trace_overhead is also the flight-recorder acceptance gate (exit 1 when
# the journal costs >5% geomean), so running it here makes the smoke fail
# on an overhead regression. At this reduced scale the geomean jitters
# ±5% run-to-run on a one-core host (hypervisor steal), so the gate gets
# best-of-three — the same medicine oracle_scaling's raw cells take — and
# only a repeatable overhead regression fails the smoke.
trace_ok=0
for attempt in 1 2 3; do
    if "$bin/trace_overhead" 2000 >/dev/null; then
        trace_ok=1
        break
    fi
    echo "  trace_overhead gate attempt $attempt failed; retrying" >&2
done
if [ "$trace_ok" -ne 1 ]; then
    echo "error: trace_overhead gate failed three runs in a row" >&2
    exit 1
fi

# A bench binary that exits 0 without writing its artifact is a harness
# bug, not a validation detail: fail loudly, naming the missing artifact,
# before any JSON parsing (which would otherwise surface the problem as an
# unrelated-looking open() traceback). The list of required artifacts is
# derived from EXPERIMENTS.md — every `BENCH_*.json` a bench section names
# must come out of the smoke run — so a newly documented artifact is gated
# the day it is written up, and a documented-but-never-produced one (PR 3
# shipped its oracle-scaling section with no committed artifact) fails here
# instead of surviving as a broken reproduction promise.
experiments_artifacts="$(grep -o 'BENCH_[A-Za-z0-9_]*\.json' "$repo_root/EXPERIMENTS.md" | sort -u)"
if [ -z "$experiments_artifacts" ]; then
    echo "error: EXPERIMENTS.md names no BENCH_*.json artifacts; the derivation is broken" >&2
    exit 1
fi
missing=0
for artifact in $experiments_artifacts TRACE_flight_recorder.json; do
    if ! test -s "$artifact"; then
        echo "error: EXPERIMENTS.md names $artifact but the bench run produced no such file" >&2
        missing=1
    fi
done
# Artifacts EXPERIMENTS.md declares "checked into" must also exist at the
# repo root at full scale — the smoke's scratch copies never clobber them,
# so nothing else guarantees they were actually committed.
for artifact in $(grep -o 'checked into `BENCH_[A-Za-z0-9_]*\.json`' "$repo_root/EXPERIMENTS.md" \
    | grep -o 'BENCH_[A-Za-z0-9_]*\.json' | sort -u); do
    if ! test -s "$repo_root/$artifact"; then
        echo "error: EXPERIMENTS.md says $artifact is checked in, but the repo root has no such file" >&2
        missing=1
    fi
done
if [ "$missing" -ne 0 ]; then
    exit 1
fi

# Every artifact must parse as JSON with a non-empty `results` array (and
# the metrics snapshot with non-empty counters).
if command -v python3 >/dev/null 2>&1; then
    python3 - <<'EOF'
import json
import sys

for path, key in [
    ("BENCH_store_concurrency.json", None),  # top-level array
    ("BENCH_store_concurrency_metrics.json", None),  # top-level array
    ("BENCH_oracle_scaling.json", "results"),
    ("BENCH_mvcc_scaling.json", "results"),
    ("BENCH_trace_overhead.json", "results"),
]:
    with open(path) as f:
        doc = json.load(f)
    entries = doc if key is None else doc.get(key)
    if not entries:
        sys.exit(f"{path}: empty or missing '{key or 'top-level array'}'")
    print(f"  {path}: ok ({len(entries)} entries)")

# The trace-overhead artifact must carry its gate verdict, and the Chrome
# trace export must be a valid trace_event document: a `traceEvents` array
# of objects each naming a phase (`ph`) and timestamp (`ts`).
with open("BENCH_trace_overhead.json") as f:
    summary = json.load(f)["summary"]
for field in ("geomean_on_off_ratio", "gate_min_ratio", "pass"):
    if field not in summary:
        sys.exit(f"BENCH_trace_overhead.json: summary missing '{field}'")
with open("TRACE_flight_recorder.json") as f:
    trace = json.load(f)
events = trace.get("traceEvents")
if not events:
    sys.exit("TRACE_flight_recorder.json: empty or missing 'traceEvents'")
for e in events:
    if "ph" not in e or "ts" not in e or "name" not in e:
        sys.exit("TRACE_flight_recorder.json: malformed trace event")
print(f"  TRACE_flight_recorder.json: ok ({len(events)} trace events)")
EOF
else
    echo "  warning: python3 unavailable, JSON content checked by size only"
fi

echo "== bench smoke ok =="

//! `writesnap` — write-snapshot isolation in Rust.
//!
//! A production-quality reproduction of *A Critique of Snapshot Isolation*
//! (Gómez Ferro & Yabandeh, EuroSys 2012): an embedded multi-version
//! transactional key-value store with pluggable isolation (snapshot isolation
//! or the serializable write-snapshot isolation), plus a deterministic
//! cluster simulation that regenerates every figure of the paper's
//! evaluation.
//!
//! This facade crate re-exports the workspace crates under stable paths:
//!
//! * [`core`] — timestamps, conflict-detection algorithms, commit table.
//! * [`store`] — the embedded transactional store (start here).
//! * [`history`] — histories, anomalies, serializability checking.
//! * [`sim`] — the discrete-event simulation kernel.
//! * [`wal`] — the BookKeeper-like replicated write-ahead log.
//! * [`kvstore`] — the HBase-like region-partitioned MVCC store model.
//! * [`obs`] — lock-free metrics, exposition, and transaction tracing.
//! * [`oracle`] — the status-oracle server model.
//! * [`workload`] — the transactional YCSB-like workload generator.
//! * [`cluster`] — the full-cluster simulation and experiment runner.
//! * [`dst`] — the deterministic fault-injection stress harness.
//!
//! # Quickstart
//!
//! ```
//! use writesnap::core::IsolationLevel;
//! use writesnap::store::{Db, DbOptions};
//!
//! let db = Db::open(DbOptions::new(IsolationLevel::WriteSnapshot));
//! let mut txn = db.begin();
//! txn.put(b"hello", b"world");
//! txn.commit().expect("no concurrent writers");
//!
//! let mut reader = db.begin();
//! assert_eq!(reader.get(b"hello").as_deref(), Some(&b"world"[..]));
//! ```

pub use wsi_cluster as cluster;
pub use wsi_core as core;
pub use wsi_dst as dst;
pub use wsi_history as history;
pub use wsi_kvstore as kvstore;
pub use wsi_obs as obs;
pub use wsi_oracle as oracle;
pub use wsi_sim as sim;
pub use wsi_store as store;
pub use wsi_wal as wal;
pub use wsi_workload as workload;

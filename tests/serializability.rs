//! Property-based serializability checking (the paper's Theorem 1, tested).
//!
//! Random multi-transaction programs run against the *real* embedded store
//! under randomly chosen interleavings. Every execution is recorded as a
//! history (`wsi-history` notation) and checked against the ground truth:
//!
//! * under **write-snapshot isolation**, every recorded history must be
//!   serializable (acyclic snapshot-semantics DSG) and the §4.2 `serial(h)`
//!   construction must yield an equivalent serial history;
//! * under **snapshot isolation**, non-serializable histories exist and are
//!   actually reachable (write skew);
//! * both levels must prevent lost updates.

use proptest::prelude::*;
use writesnap::core::IsolationLevel;
use writesnap::history::{accept, anomaly, dsg, serialize, History, Op, TxnId};
use writesnap::store::{Db, DbOptions, Transaction};

const ITEMS: [&str; 4] = ["w", "x", "y", "z"];

/// One step of a transaction's program.
#[derive(Debug, Clone, Copy)]
enum Step {
    Read(usize),
    Write(usize),
}

/// A randomly generated concurrent program: per-transaction op lists plus a
/// global interleaving order.
#[derive(Debug, Clone)]
struct Program {
    txns: Vec<Vec<Step>>,
    /// Sequence of transaction indices; each occurrence runs that
    /// transaction's next step (or its commit once steps are exhausted).
    schedule: Vec<usize>,
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0..ITEMS.len()).prop_map(Step::Read),
        (0..ITEMS.len()).prop_map(Step::Write),
    ]
}

fn program_strategy() -> impl Strategy<Value = Program> {
    (2usize..=4)
        .prop_flat_map(|txn_count| {
            let txns = prop::collection::vec(
                prop::collection::vec(step_strategy(), 1..=4),
                txn_count..=txn_count,
            );
            txns.prop_flat_map(move |txns| {
                // Total slots: every step plus one commit per transaction.
                let slots: usize = txns.iter().map(|t| t.len() + 1).sum();
                let schedule = prop::collection::vec(0..txns.len(), slots..=slots);
                (Just(txns), schedule)
            })
        })
        .prop_map(|(txns, schedule)| Program { txns, schedule })
}

/// Executes a program against a fresh store, recording the history.
fn execute(program: &Program, level: IsolationLevel) -> History {
    let db = Db::open(DbOptions::new(level));
    let mut handles: Vec<Option<Transaction>> = Vec::new();
    let mut cursors: Vec<usize> = vec![0; program.txns.len()];
    let mut ops: Vec<Op> = Vec::new();

    for _ in &program.txns {
        handles.push(None);
    }
    for &t in &program.schedule {
        let txn_id = TxnId(t as u32 + 1);
        if cursors[t] > program.txns[t].len() {
            continue; // already finished
        }
        let handle = handles[t].get_or_insert_with(|| db.begin());
        if cursors[t] == program.txns[t].len() {
            // Commit step.
            let handle = handles[t].take().expect("open transaction");
            match handle.commit() {
                Ok(_) => ops.push(Op::Commit(txn_id)),
                Err(_) => ops.push(Op::Abort(txn_id)),
            }
            cursors[t] += 1;
            continue;
        }
        match program.txns[t][cursors[t]] {
            Step::Read(i) => {
                let _ = handle.get(ITEMS[i].as_bytes());
                ops.push(Op::Read(txn_id, ITEMS[i].to_string()));
            }
            Step::Write(i) => {
                handle.put(ITEMS[i].as_bytes(), b"v");
                ops.push(Op::Write(txn_id, ITEMS[i].to_string()));
            }
        }
        cursors[t] += 1;
    }
    // Any transaction never committed by the schedule stays in flight; its
    // handle rolls back on drop, which matches "excluded from the history".
    History::new(ops)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Theorem 1: every execution the WSI store admits is serializable.
    #[test]
    fn wsi_executions_are_serializable(program in program_strategy()) {
        let history = execute(&program, IsolationLevel::WriteSnapshot);
        prop_assert!(
            dsg::is_serializable(&history),
            "non-serializable WSI execution: {history}"
        );
    }

    /// The constructive half: serial(h) is serial and equivalent (§4.2).
    #[test]
    fn wsi_serial_construction_is_equivalent(program in program_strategy()) {
        let history = execute(&program, IsolationLevel::WriteSnapshot);
        let serial = serialize::serial(&history);
        prop_assert!(serial.is_serial());
        prop_assert!(
            serialize::equivalent(&history, &serial),
            "serial(h) not equivalent for {history} -> {serial}"
        );
    }

    /// Neither level ever produces a lost update (§3.2): SI prevents it via
    /// write-write conflicts, WSI via read-write conflicts.
    #[test]
    fn no_lost_updates_under_either_level(program in program_strategy()) {
        for level in [IsolationLevel::Snapshot, IsolationLevel::WriteSnapshot] {
            let history = execute(&program, level);
            prop_assert!(
                !anomaly::has_lost_update(&history),
                "lost update under {level}: {history}"
            );
        }
    }

    /// Replay-level Theorem 1: any history the WSI *oracle* admits (not just
    /// ones our store generates) is serializable. Histories are sampled as
    /// raw op sequences and filtered through the oracle's acceptance.
    #[test]
    fn wsi_accepted_histories_are_serializable(program in program_strategy()) {
        let history = execute(&program, IsolationLevel::Snapshot);
        // Reinterpret the recorded interleaving as a candidate history: if
        // WSI would have admitted it wholesale, it must be serializable.
        if accept::accepts(&history, IsolationLevel::WriteSnapshot) {
            prop_assert!(dsg::is_serializable(&history));
        }
    }

    /// Dirty reads are impossible under snapshot reads: no recorded history
    /// contains one, under either level.
    #[test]
    fn snapshot_reads_never_observe_uncommitted_data(program in program_strategy()) {
        for level in [IsolationLevel::Snapshot, IsolationLevel::WriteSnapshot] {
            let history = execute(&program, level);
            // The detector is syntactic over the interleaving: a read op
            // between a write and its commit. Our reads *happen* there but
            // return snapshot values; to check semantics we verify instead
            // that every committed reader's reads-from source is a committed
            // transaction (by construction of `reads_from`) — i.e. the DSG
            // builds without touching uncommitted writers.
            let graph = dsg::build(&history);
            for edge in &graph.edges {
                prop_assert!(history.committed().contains(&edge.from));
                prop_assert!(history.committed().contains(&edge.to));
            }
        }
    }
}

/// Write skew is *reachable* under SI (the theorem's converse): a concrete
/// deterministic schedule produces it on the real store.
#[test]
fn write_skew_reachable_under_si_not_wsi() {
    let program = Program {
        txns: vec![
            vec![Step::Read(1), Step::Read(2), Step::Write(1)],
            vec![Step::Read(1), Step::Read(2), Step::Write(2)],
        ],
        // Interleave fully: both read x and y, then both write and commit.
        schedule: vec![0, 0, 1, 1, 0, 1, 0, 1],
    };
    let si = execute(&program, IsolationLevel::Snapshot);
    assert!(
        anomaly::has_write_skew(&si),
        "SI should exhibit write skew: {si}"
    );
    assert!(!dsg::is_serializable(&si));

    let wsi = execute(&program, IsolationLevel::WriteSnapshot);
    assert!(
        !anomaly::has_write_skew(&wsi),
        "WSI must prevent write skew: {wsi}"
    );
    assert!(dsg::is_serializable(&wsi));
}

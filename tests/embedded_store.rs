//! Integration tests of the embedded store: real threads, durability,
//! recovery, GC, and the lock-based/lock-free contrast.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

use writesnap::core::{AbortReason, IsolationLevel, Timestamp};
use writesnap::store::percolator::{CrashPoint, LockResolution, PercolatorDb};
use writesnap::store::{Db, DbOptions, Error};
use writesnap::wal::LedgerConfig;

fn k(i: u64) -> Vec<u8> {
    format!("key{i:06}").into_bytes()
}

#[test]
fn concurrent_disjoint_writers_all_commit() {
    let db = Db::open(DbOptions::new(IsolationLevel::WriteSnapshot));
    let threads = 8;
    let per_thread = 200;
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let db = db.clone();
            std::thread::spawn(move || {
                for i in 0..per_thread {
                    let mut txn = db.begin();
                    txn.put(&k(t * 1_000 + i), b"v");
                    txn.commit().expect("disjoint rows never conflict");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let stats = db.stats();
    assert_eq!(stats.oracle.commits, threads * per_thread);
    assert_eq!(stats.oracle.total_aborts(), 0);
    assert_eq!(stats.keys, (threads * per_thread) as usize);
}

#[test]
fn contended_counter_is_exact_under_wsi_with_retries() {
    // A read-modify-write counter hammered by 4 threads: with retries, the
    // final value equals the number of successful increments — WSI's
    // serializability means no update is ever lost.
    let db = Db::open(DbOptions::new(IsolationLevel::WriteSnapshot));
    let mut seed = db.begin();
    seed.put(b"counter", b"0");
    seed.commit().unwrap();

    let successes = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let db = db.clone();
            let successes = Arc::clone(&successes);
            std::thread::spawn(move || {
                for _ in 0..100 {
                    loop {
                        let mut txn = db.begin();
                        let val: u64 = String::from_utf8(txn.get(b"counter").unwrap().to_vec())
                            .unwrap()
                            .parse()
                            .unwrap();
                        txn.put(b"counter", (val + 1).to_string().as_bytes());
                        match txn.commit() {
                            Ok(_) => {
                                successes.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                            Err(Error::Aborted(_)) => continue, // retry
                            Err(e) => panic!("unexpected error: {e}"),
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let mut check = db.begin();
    let final_val: u64 = String::from_utf8(check.get(b"counter").unwrap().to_vec())
        .unwrap()
        .parse()
        .unwrap();
    assert_eq!(final_val, 400);
    assert_eq!(successes.load(Ordering::Relaxed), 400);
}

#[test]
fn si_lost_update_is_prevented_by_ww_detection() {
    // History 3's shape on the real store: both read, both write the same
    // key; the second committer must abort under SI too.
    let db = Db::open(DbOptions::new(IsolationLevel::Snapshot));
    let mut seed = db.begin();
    seed.put(b"x", b"0");
    seed.commit().unwrap();
    let mut t1 = db.begin();
    let mut t2 = db.begin();
    let _ = t1.get(b"x");
    let _ = t2.get(b"x");
    t1.put(b"x", b"1");
    t2.put(b"x", b"2");
    t1.commit().unwrap();
    let err = t2.commit().unwrap_err();
    assert!(matches!(
        err.abort_reason(),
        Some(AbortReason::WriteWriteConflict { .. })
    ));
}

#[test]
fn wsi_admits_blind_write_overlap_that_si_rejects() {
    // History 4: blind writes to the same key are serializable; WSI admits
    // them, SI does not.
    for (level, expect_ok) in [
        (IsolationLevel::WriteSnapshot, true),
        (IsolationLevel::Snapshot, false),
    ] {
        let db = Db::open(DbOptions::new(level));
        let mut t1 = db.begin();
        let mut t2 = db.begin();
        let _ = t1.get(b"x"); // t1 reads x (absent) then writes it
        t1.put(b"x", b"from-t1");
        t2.put(b"x", b"from-t2"); // t2 writes blindly
        t1.commit().unwrap();
        assert_eq!(t2.commit().is_ok(), expect_ok, "under {level}");
        if expect_ok {
            // Commit order decides the final version: t2 committed last.
            let mut r = db.begin();
            assert_eq!(r.get(b"x").unwrap().as_ref(), b"from-t2");
        }
    }
}

#[test]
fn read_only_transactions_never_abort_under_either_level() {
    for level in [IsolationLevel::Snapshot, IsolationLevel::WriteSnapshot] {
        let db = Db::open(DbOptions::new(level));
        let mut seed = db.begin();
        seed.put(b"a", b"1");
        seed.commit().unwrap();
        let barrier = Arc::new(Barrier::new(2));
        let writer = {
            let db = db.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait();
                for i in 0..200u32 {
                    let mut t = db.begin();
                    t.put(b"a", &i.to_le_bytes());
                    t.commit().unwrap();
                }
            })
        };
        barrier.wait();
        for _ in 0..200 {
            let mut t = db.begin();
            let _ = t.get(b"a");
            let _ = t.get(b"b");
            t.commit()
                .expect("read-only transactions must never abort (§4.1)");
        }
        writer.join().unwrap();
    }
}

#[test]
fn snapshot_reads_are_repeatable_despite_writers() {
    let db = Db::open(DbOptions::new(IsolationLevel::WriteSnapshot));
    let mut seed = db.begin();
    seed.put(b"k", b"original");
    seed.commit().unwrap();
    let mut reader = db.begin();
    let before = reader.get(b"k");
    for i in 0..10u32 {
        let mut w = db.begin();
        w.put(b"k", format!("update{i}").as_bytes());
        w.commit().unwrap();
    }
    let after = reader.get(b"k");
    assert_eq!(before, after, "no fuzzy reads under snapshot semantics");
    assert_eq!(before.unwrap().as_ref(), b"original");
}

#[test]
fn durable_db_recovers_committed_state_only() {
    let options = DbOptions::new(IsolationLevel::WriteSnapshot).durable(LedgerConfig {
        replicas: 3,
        ack_quorum: 2,
        batch: writesnap::wal::BatchPolicy::unbatched(),
        flush_delay_us: 0,
    });
    let db = Db::open(options.clone());
    let mut committed = db.begin();
    committed.put(b"committed", b"yes");
    committed.commit().unwrap();

    let mut aborted = db.begin();
    let _ = aborted.get(b"committed");
    aborted.put(b"doomed", b"no");
    let mut racer = db.begin();
    racer.put(b"committed", b"still yes");
    racer.commit().unwrap();
    assert!(aborted.commit().is_err(), "rw conflict");

    let mut in_flight = db.begin();
    in_flight.put(b"limbo", b"never committed");
    // "crash": drop the db, keep the replicated log.
    let wal = db.wal_snapshot().expect("durable db has a ledger");
    drop(in_flight);
    drop(db);

    let recovered = Db::recover(options, wal).expect("clean recovery");
    let mut r = recovered.begin();
    assert_eq!(r.get(b"committed").unwrap().as_ref(), b"still yes");
    assert_eq!(r.get(b"doomed"), None, "aborted writes must not resurrect");
    assert_eq!(
        r.get(b"limbo"),
        None,
        "in-flight writes die with the client"
    );

    // The recovered oracle still detects conflicts against recovered state.
    let mut t1 = recovered.begin();
    let mut t2 = recovered.begin();
    let _ = t1.get(b"committed");
    t2.put(b"committed", b"newer");
    t2.commit().unwrap();
    t1.put(b"other", b"v");
    assert!(t1.commit().is_err());
}

#[test]
fn recovery_survives_one_bookie_failure() {
    let options = DbOptions::new(IsolationLevel::WriteSnapshot).durable(LedgerConfig {
        replicas: 3,
        ack_quorum: 2,
        batch: writesnap::wal::BatchPolicy::unbatched(),
        flush_delay_us: 0,
    });
    let db = Db::open(options.clone());
    for i in 0..50 {
        let mut t = db.begin();
        t.put(&k(i), b"v");
        t.commit().unwrap();
    }
    let mut wal = db.wal_snapshot().unwrap();
    wal.fail_bookie(1); // within the f = 1 budget
    let recovered = Db::recover(options, wal).unwrap();
    let mut r = recovered.begin();
    for i in 0..50 {
        assert!(r.get(&k(i)).is_some(), "row {i} lost");
    }
}

#[test]
fn gc_reclaims_versions_and_preserves_reads() {
    let db = Db::open(DbOptions::new(IsolationLevel::WriteSnapshot));
    for round in 0..20u32 {
        let mut t = db.begin();
        for i in 0..50 {
            t.put(&k(i), format!("round{round}").as_bytes());
        }
        t.commit().unwrap();
    }
    let before = db.stats().versions;
    assert_eq!(before, 20 * 50);
    let stats = db.gc();
    assert_eq!(stats.versions_dropped, 19 * 50);
    assert_eq!(db.stats().versions, 50);
    let mut r = db.begin();
    assert_eq!(r.get(&k(0)).unwrap().as_ref(), b"round19");
}

#[test]
fn gc_respects_active_snapshots() {
    let db = Db::open(DbOptions::new(IsolationLevel::WriteSnapshot));
    let mut t = db.begin();
    t.put(b"k", b"v1");
    t.commit().unwrap();
    let mut old_reader = db.begin(); // pins the watermark
    let mut t2 = db.begin();
    t2.put(b"k", b"v2");
    t2.commit().unwrap();
    db.gc();
    assert_eq!(
        old_reader.get(b"k").unwrap().as_ref(),
        b"v1",
        "the version an active snapshot reads must survive GC"
    );
}

#[test]
fn bounded_oracle_db_pessimistically_aborts_stale_transactions() {
    let db = Db::open(DbOptions::new(IsolationLevel::WriteSnapshot).bounded_last_commit(4));
    let mut stale = db.begin();
    let _ = stale.get(b"unrelated");
    // Enough distinct-row commits to cycle the bounded lastCommit table.
    for i in 0..64 {
        let mut t = db.begin();
        t.put(&k(i), b"v");
        t.commit().unwrap();
    }
    stale.put(b"out", b"v");
    let err = stale.commit().unwrap_err();
    assert!(matches!(
        err.abort_reason(),
        Some(AbortReason::TmaxExceeded { .. })
    ));
}

#[test]
fn percolator_blocks_where_lockfree_proceeds() {
    // The §2.1 contrast, as an integration test across both engines.
    let lockfree = Db::open(DbOptions::new(IsolationLevel::Snapshot));
    let percolator = PercolatorDb::open();

    // Identical scenario: a client dies mid-commit.
    let mut doomed = percolator.begin();
    doomed.put(b"k", b"v");
    doomed.commit_with_crash(CrashPoint::AfterPrewrite).unwrap();
    let mut doomed_lf = lockfree.begin();
    doomed_lf.put(b"k", b"v");
    drop(doomed_lf); // crash

    // Percolator writer blocks; lock-free writer proceeds.
    let mut pw = percolator.begin();
    pw.put(b"k", b"w");
    assert!(matches!(pw.commit(), Err(Error::KeyLocked { .. })));
    let mut lw = lockfree.begin();
    lw.put(b"k", b"w");
    lw.commit().expect("no locks in the lock-free design");

    // Percolator needs forced cleanup before making progress.
    assert_eq!(
        percolator.resolve_lock(b"k", true),
        LockResolution::RolledBack
    );
    let mut pw2 = percolator.begin();
    pw2.put(b"k", b"w");
    pw2.commit().unwrap();
}

#[test]
fn timestamps_are_strictly_monotonic_across_threads() {
    let db = Db::open(DbOptions::new(IsolationLevel::WriteSnapshot));
    let seen = Arc::new(parking_lot::Mutex::new(Vec::<Timestamp>::new()));
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let db = db.clone();
            let seen = Arc::clone(&seen);
            std::thread::spawn(move || {
                for _ in 0..500 {
                    let t = db.begin();
                    seen.lock().push(t.start_ts());
                    t.rollback();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let mut all = seen.lock().clone();
    let n = all.len();
    all.sort_unstable();
    all.dedup();
    assert_eq!(all.len(), n, "start timestamps must be unique");
}

#[test]
fn percolator_thread_stress_with_cleanup() {
    // Many threads race read-modify-writes on a small hot set under the
    // lock-based engine, with every conflict resolved by retry after forced
    // lock cleanup. The counter total must equal successful increments.
    let db = PercolatorDb::open();
    let mut seed = db.begin();
    seed.put(b"hot", b"0");
    seed.commit().unwrap();

    let successes = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let db = db.clone();
            let successes = Arc::clone(&successes);
            std::thread::spawn(move || {
                for _ in 0..50 {
                    loop {
                        let mut t = db.begin();
                        let n: u64 = match t.get(b"hot") {
                            Ok(Some(v)) => String::from_utf8(v.to_vec()).unwrap().parse().unwrap(),
                            Ok(None) => 0,
                            Err(Error::KeyLocked { .. }) => {
                                // Another client is mid-2PC; resolve and retry.
                                db.resolve_lock(b"hot", true);
                                continue;
                            }
                            Err(e) => panic!("unexpected error: {e}"),
                        };
                        t.put(b"hot", (n + 1).to_string().as_bytes());
                        match t.commit() {
                            Ok(_) => {
                                successes.fetch_add(1, Ordering::Relaxed);
                                break;
                            }
                            Err(Error::KeyLocked { .. }) | Err(Error::Aborted(_)) => continue,
                            Err(e) => panic!("unexpected error: {e}"),
                        }
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let mut check = db.begin();
    let total: u64 = String::from_utf8(check.get(b"hot").unwrap().unwrap().to_vec())
        .unwrap()
        .parse()
        .unwrap();
    assert_eq!(total, successes.load(Ordering::Relaxed));
    assert_eq!(total, 200, "every increment must eventually land");
}

#[test]
fn ssi_db_crosschecks_with_wsi_on_write_skew() {
    // The same write-skew scenario against all three engines: SI admits the
    // anomaly, WSI and SSI refuse it.
    use writesnap::store::ssi_db::SsiDb;

    // SI: both commit (the anomaly).
    let si = Db::open(DbOptions::new(IsolationLevel::Snapshot));
    let mut seed = si.begin();
    seed.put(b"x", b"1");
    seed.put(b"y", b"1");
    seed.commit().unwrap();
    let mut a = si.begin();
    let mut b = si.begin();
    let _ = (a.get(b"x"), a.get(b"y"), b.get(b"x"), b.get(b"y"));
    a.put(b"x", b"0");
    b.put(b"y", b"0");
    assert!(
        a.commit().is_ok() && b.commit().is_ok(),
        "SI admits write skew"
    );

    // WSI: one aborts.
    let wsi = Db::open(DbOptions::new(IsolationLevel::WriteSnapshot));
    let mut seed = wsi.begin();
    seed.put(b"x", b"1");
    seed.put(b"y", b"1");
    seed.commit().unwrap();
    let mut a = wsi.begin();
    let mut b = wsi.begin();
    let _ = (a.get(b"x"), a.get(b"y"), b.get(b"x"), b.get(b"y"));
    a.put(b"x", b"0");
    b.put(b"y", b"0");
    let outcomes = (a.commit().is_ok(), b.commit().is_ok());
    assert!(outcomes.0 != outcomes.1, "exactly one commits under WSI");

    // SSI: one aborts.
    let ssi = SsiDb::open();
    let mut seed = ssi.begin();
    seed.put(b"x", b"1");
    seed.put(b"y", b"1");
    seed.commit().unwrap();
    let mut a = ssi.begin();
    let mut b = ssi.begin();
    let _ = (a.get(b"x"), a.get(b"y"), b.get(b"x"), b.get(b"y"));
    a.put(b"x", b"0");
    b.put(b"y", b"0");
    let outcomes = (a.commit().is_ok(), b.commit().is_ok());
    assert!(outcomes.0 != outcomes.1, "exactly one commits under SSI");
}

//! Property tests of the status-oracle core and its persistence layer.
//!
//! Invariants checked over randomized schedules:
//!
//! * **Algorithm 3 is conservative**: a memory-bounded oracle never admits a
//!   commit the exact (unbounded) oracle refuses, at any capacity.
//! * **Recovery is conflict-faithful**: an oracle rebuilt from its WAL makes
//!   the same decision on any pending commit request the original would.
//! * **First-committer-wins**: of two conflicting requests, whichever
//!   reaches the oracle first commits.
//! * **Read-only requests never abort** and never consume commit
//!   timestamps.
//! * **WAL framing round-trips** arbitrary record contents.

use proptest::prelude::*;
use writesnap::core::{CommitRequest, IsolationLevel, RowId, StatusOracleCore, Timestamp};
use writesnap::wal::{decode_records, encode_record, TxnLogRecord};

/// A random transactional schedule over a small row space: each entry is
/// (begin-slack, read rows, write rows); transactions are begun in order and
/// committed after `slack` later begins, giving overlapping lifetimes.
#[derive(Debug, Clone)]
struct Schedule {
    txns: Vec<(usize, Vec<u64>, Vec<u64>)>,
}

fn schedule_strategy() -> impl Strategy<Value = Schedule> {
    prop::collection::vec(
        (
            0usize..3,
            prop::collection::vec(0u64..12, 0..4),
            prop::collection::vec(0u64..12, 0..4),
        ),
        1..20,
    )
    .prop_map(|txns| Schedule { txns })
}

fn rows(ids: &[u64]) -> Vec<RowId> {
    ids.iter().map(|&i| RowId(i)).collect()
}

/// Runs a schedule: transaction `i` begins at step `i` and commits once
/// `slack_i` further transactions have begun, so lifetimes overlap. Returns
/// each transaction's `(start_ts, committed)` in schedule order. Decisions
/// are submitted in a deterministic order (begin order among the due).
fn run_schedule(oracle: &mut StatusOracleCore, schedule: &Schedule) -> Vec<(Timestamp, bool)> {
    let mut pending: Vec<usize> = Vec::new();
    let mut starts: Vec<Timestamp> = Vec::with_capacity(schedule.txns.len());
    let mut outcomes: Vec<(Timestamp, bool)> = vec![(Timestamp::ZERO, false); schedule.txns.len()];
    let decide = |oracle: &mut StatusOracleCore,
                  outcomes: &mut Vec<(Timestamp, bool)>,
                  starts: &[Timestamp],
                  i: usize| {
        let (_, reads, writes) = &schedule.txns[i];
        let outcome = oracle.commit(CommitRequest::new(starts[i], rows(reads), rows(writes)));
        outcomes[i] = (starts[i], outcome.is_committed());
    };
    for idx in 0..schedule.txns.len() {
        starts.push(oracle.begin());
        pending.push(idx);
        let due: Vec<usize> = pending
            .iter()
            .copied()
            .filter(|&j| idx - j >= schedule.txns[j].0)
            .collect();
        pending.retain(|j| !due.contains(j));
        for j in due {
            decide(oracle, &mut outcomes, &starts, j);
        }
    }
    for j in std::mem::take(&mut pending) {
        decide(oracle, &mut outcomes, &starts, j);
    }
    outcomes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Algorithm 3 (bounded `lastCommit`) only ever *adds* aborts.
    #[test]
    fn bounded_oracle_is_conservative(
        schedule in schedule_strategy(),
        capacity in 1usize..8,
        level_wsi in any::<bool>(),
    ) {
        let level = if level_wsi {
            IsolationLevel::WriteSnapshot
        } else {
            IsolationLevel::Snapshot
        };
        let mut exact = StatusOracleCore::unbounded(level);
        let mut bounded = StatusOracleCore::bounded(level, capacity);
        let exact_outcomes = run_schedule(&mut exact, &schedule);
        let bounded_outcomes = run_schedule(&mut bounded, &schedule);
        // Once a decision diverges, the two oracles issue different
        // timestamp sequences and later decisions are incomparable; the
        // conservativeness contract binds the *first* divergence: it must be
        // exact = commit, bounded = abort — never the other way around.
        for (i, (&(_, e), &(_, b))) in
            exact_outcomes.iter().zip(&bounded_outcomes).enumerate()
        {
            if e != b {
                prop_assert!(
                    e && !b,
                    "txn {i}: bounded committed what the exact oracle refused"
                );
                break;
            }
        }
    }

    /// Read-only commits always succeed and never move the timestamp
    /// counter.
    #[test]
    fn read_only_commits_are_free(reads in prop::collection::vec(0u64..100, 0..10)) {
        for level in [IsolationLevel::Snapshot, IsolationLevel::WriteSnapshot] {
            let mut oracle = StatusOracleCore::unbounded(level);
            let seed = oracle.begin();
            prop_assert!(oracle
                .commit(CommitRequest::new(seed, vec![], rows(&[1, 2, 3])))
                .is_committed());
            let before = oracle.last_issued_ts();
            let ts = oracle.begin();
            let outcome = oracle.commit(CommitRequest::new(ts, rows(&reads), vec![]));
            prop_assert!(outcome.is_committed());
            prop_assert_eq!(oracle.last_issued_ts(), before.next()); // only the begin
        }
    }

    /// First-committer-wins (§2.2: "the algorithm commits the transaction
    /// for which the commit request is received sooner").
    #[test]
    fn first_committer_wins(row in 0u64..4, order in any::<bool>()) {
        let mut oracle = StatusOracleCore::unbounded(IsolationLevel::Snapshot);
        let a = oracle.begin();
        let b = oracle.begin();
        let (first, second) = if order { (a, b) } else { (b, a) };
        let win = oracle.commit(CommitRequest::new(first, vec![], rows(&[row])));
        let lose = oracle.commit(CommitRequest::new(second, vec![], rows(&[row])));
        prop_assert!(win.is_committed());
        prop_assert!(lose.is_aborted());
    }

    /// A recovered oracle decides identically on requests begun pre-crash.
    #[test]
    fn recovery_preserves_decisions(
        schedule in schedule_strategy(),
        probe_reads in prop::collection::vec(0u64..12, 0..4),
        probe_writes in prop::collection::vec(0u64..12, 1..4),
    ) {
        let mut original = StatusOracleCore::unbounded(IsolationLevel::WriteSnapshot);
        // A transaction in flight across the crash.
        let in_flight = original.begin();
        let outcomes = run_schedule(&mut original, &schedule);

        // "Persist" every decision the original made, then replay in commit
        // order. The WAL records carry the write sets; look them up by the
        // start timestamps `run_schedule` reported.
        let mut recovered = StatusOracleCore::unbounded(IsolationLevel::WriteSnapshot);
        let mut commits: Vec<(Timestamp, Timestamp)> =
            original.commit_table().iter_commits().collect();
        commits.sort_by_key(|&(_, c)| c);
        for (start, commit) in commits {
            let idx = outcomes
                .iter()
                .position(|&(s, _)| s == start)
                .expect("committed txn came from the schedule");
            let writes = rows(&schedule.txns[idx].2);
            recovered.replay_commit(start, commit, &writes);
        }
        // Replay the timestamp reservation: the recovered oracle must never
        // reissue a pre-crash timestamp.
        recovered.advance_timestamps(original.last_issued_ts());

        let probe = CommitRequest::new(in_flight, rows(&probe_reads), rows(&probe_writes));
        let expected = original.commit(probe.clone());
        let actual = recovered.commit(probe);
        prop_assert_eq!(expected.is_committed(), actual.is_committed());
    }

    /// WAL record framing is lossless.
    #[test]
    fn wal_records_roundtrip(
        start in 0u64..u64::MAX / 2,
        commit_delta in 1u64..1000,
        rows in prop::collection::vec(any::<u64>(), 0..64),
        is_abort in any::<bool>(),
    ) {
        let record = if is_abort {
            TxnLogRecord::Abort { start_ts: start }
        } else {
            TxnLogRecord::Commit {
                start_ts: start,
                commit_ts: start + commit_delta,
                write_rows: rows,
            }
        };
        let encoded = encode_record(&record);
        let decoded = decode_records(&[encoded]).unwrap();
        prop_assert_eq!(decoded, vec![record]);
    }

    /// Timestamps issued by an oracle are unique and strictly increasing,
    /// interleaving begins and commits arbitrarily.
    #[test]
    fn timestamps_strictly_increase(schedule in schedule_strategy()) {
        let mut oracle = StatusOracleCore::unbounded(IsolationLevel::WriteSnapshot);
        let mut last = Timestamp::ZERO;
        for (_, reads, writes) in &schedule.txns {
            let ts = oracle.begin();
            prop_assert!(ts > last);
            last = ts;
            if let Some(cts) = oracle
                .commit(CommitRequest::new(ts, rows(reads), rows(writes)))
                .commit_ts()
            {
                if !writes.is_empty() {
                    prop_assert!(cts > last);
                    last = cts;
                }
            }
        }
    }
}

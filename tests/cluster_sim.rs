//! Integration tests of the full-cluster simulation: determinism and the
//! headline shapes the paper's evaluation establishes.

use writesnap::cluster::{experiments, ClusterConfig, Runner};
use writesnap::core::IsolationLevel;
use writesnap::sim::SimTime;
use writesnap::workload::{KeyDistribution, Mix};

fn quick(mut cfg: ClusterConfig) -> ClusterConfig {
    cfg.warmup = SimTime::from_secs(2);
    cfg.measure = SimTime::from_secs(6);
    cfg
}

#[test]
fn simulation_is_bit_deterministic() {
    let mk = || {
        Runner::new(quick(ClusterConfig::hbase(
            IsolationLevel::WriteSnapshot,
            20,
            KeyDistribution::Zipfian,
            Mix::Mixed,
            99,
        )))
        .run()
    };
    let (a, b) = (mk(), mk());
    assert_eq!(a.committed, b.committed);
    assert_eq!(a.aborted, b.aborted);
    assert_eq!(a.mean_latency_ms, b.mean_latency_ms);
    assert_eq!(a.p99_latency_ms, b.p99_latency_ms);
}

#[test]
fn different_seeds_differ() {
    let mk = |seed| {
        Runner::new(quick(ClusterConfig::hbase(
            IsolationLevel::WriteSnapshot,
            20,
            KeyDistribution::Zipfian,
            Mix::Mixed,
            seed,
        )))
        .run()
    };
    assert_ne!(mk(1).committed, mk(2).committed);
}

#[test]
fn si_and_wsi_perform_comparably_on_hbase() {
    // The paper's headline (Figs. 6–7): "the overhead of supporting two
    // isolation levels is almost the same".
    let mk = |level| {
        Runner::new(quick(ClusterConfig::hbase(
            level,
            40,
            KeyDistribution::Zipfian,
            Mix::Mixed,
            7,
        )))
        .run()
    };
    let wsi = mk(IsolationLevel::WriteSnapshot);
    let si = mk(IsolationLevel::Snapshot);
    let tps_ratio = wsi.tps / si.tps;
    assert!(
        (0.85..1.15).contains(&tps_ratio),
        "tps ratio {tps_ratio} (wsi {}, si {})",
        wsi.tps,
        si.tps
    );
    let lat_ratio = wsi.mean_latency_ms / si.mean_latency_ms;
    assert!(
        (0.85..1.15).contains(&lat_ratio),
        "latency ratio {lat_ratio}"
    );
}

#[test]
fn wsi_abort_rate_is_at_most_slightly_above_si_under_zipfian() {
    // Fig. 8: "although the abort rate in write-snapshot isolation is
    // slightly higher than in snapshot isolation, the difference is
    // negligible."
    let mk = |level| {
        Runner::new(quick(ClusterConfig::hbase(
            level,
            80,
            KeyDistribution::Zipfian,
            Mix::Mixed,
            7,
        )))
        .run()
    };
    let wsi = mk(IsolationLevel::WriteSnapshot);
    let si = mk(IsolationLevel::Snapshot);
    assert!(
        wsi.abort_rate < si.abort_rate + 0.08,
        "wsi {} si {}",
        wsi.abort_rate,
        si.abort_rate
    );
    assert!(wsi.abort_rate > 0.0);
}

#[test]
fn abort_rate_grows_with_throughput() {
    // Fig. 8's shape: more load, more concurrent lifetimes, more conflicts.
    let mk = |clients| {
        Runner::new(quick(ClusterConfig::hbase(
            IsolationLevel::WriteSnapshot,
            clients,
            KeyDistribution::Zipfian,
            Mix::Mixed,
            7,
        )))
        .run()
    };
    let low = mk(5);
    let high = mk(160);
    assert!(
        high.abort_rate > low.abort_rate,
        "low {} high {}",
        low.abort_rate,
        high.abort_rate
    );
    assert!(high.tps > low.tps);
}

#[test]
fn oracle_stress_mode_saturates_with_si_at_or_above_wsi() {
    // Fig. 5's shape at a high-load point.
    let mk = |level| {
        let mut cfg = ClusterConfig::fig5(level, 16, 3);
        cfg.warmup = SimTime::from_ms(500);
        cfg.measure = SimTime::from_secs(1);
        Runner::new(cfg).run()
    };
    let wsi = mk(IsolationLevel::WriteSnapshot);
    let si = mk(IsolationLevel::Snapshot);
    assert!(si.tps >= wsi.tps * 0.98, "si {} wsi {}", si.tps, wsi.tps);
    assert!(wsi.tps > 50_000.0, "saturated oracle should exceed 50K TPS");
}

#[test]
fn microbench_matches_paper_magnitudes() {
    let ops = experiments::microbench(5);
    assert!((0.1..0.4).contains(&ops.start_ms), "start {}", ops.start_ms);
    assert!((30.0..48.0).contains(&ops.read_ms), "read {}", ops.read_ms);
    assert!((0.8..1.8).contains(&ops.write_ms), "write {}", ops.write_ms);
    assert!(
        (3.0..6.5).contains(&ops.commit_ms),
        "commit {}",
        ops.commit_ms
    );
}

#[test]
fn uniform_cache_stays_cold_zipfian_runs_hot() {
    let mk = |dist| {
        Runner::new(quick(ClusterConfig::hbase(
            IsolationLevel::WriteSnapshot,
            40,
            dist,
            Mix::Mixed,
            11,
        )))
        .run()
    };
    let uniform = mk(KeyDistribution::Uniform);
    let zipf = mk(KeyDistribution::Zipfian);
    assert!(
        uniform.cache_hit_rate < 0.2,
        "uniform hit {}",
        uniform.cache_hit_rate
    );
    assert!(
        zipf.cache_hit_rate > 0.6,
        "zipf hit {}",
        zipf.cache_hit_rate
    );
    assert!(zipf.mean_latency_ms < uniform.mean_latency_ms);
}

//! The paper's Section 3–4 analysis, executed: every example history (H1–H7)
//! replayed through the real conflict-detection algorithms, checked for
//! serializability via dependency-graph cycles, and scanned for anomalies.
//!
//! ```text
//! cargo run --example histories
//! cargo run --example histories -- "r1[x] w2[x] c2 r1[x] c1"   # your own
//! ```

use writesnap::core::IsolationLevel;
use writesnap::history::{accept, anomaly, dsg, examples, serialize, History};

fn yn(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "no "
    }
}

fn analyze(label: &str, h: &History) {
    let si = accept::accepts(h, IsolationLevel::Snapshot);
    let wsi = accept::accepts(h, IsolationLevel::WriteSnapshot);
    let serializable = dsg::is_serializable(h);
    let report = anomaly::analyze(h);
    println!("{label:<4} {h}");
    println!(
        "     SI admits: {}  WSI admits: {}  serializable: {}",
        yn(si),
        yn(wsi),
        yn(serializable)
    );
    let mut notes = Vec::new();
    if report.write_skew {
        notes.push("write skew");
    }
    if report.lost_update {
        notes.push("lost update");
    }
    if report.dirty_read {
        notes.push("dirty read (single-version reading)");
    }
    if report.fuzzy_read {
        notes.push("fuzzy read (single-version reading)");
    }
    if !notes.is_empty() {
        println!("     anomalies: {}", notes.join(", "));
    }
    if wsi {
        let s = serialize::serial(h);
        debug_assert!(s.is_serial());
        debug_assert!(serialize::equivalent(h, &s));
        println!("     serial(h): {s}   (equivalent, per Theorem 1)");
    } else if serializable {
        println!("     note: serializable but refused by WSI — an unnecessary abort (§4.3)");
    }
    println!();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if !args.is_empty() {
        for (i, text) in args.iter().enumerate() {
            match text.parse::<History>() {
                Ok(h) => analyze(&format!("#{}", i + 1), &h),
                Err(e) => eprintln!("cannot parse {text:?}: {e}"),
            }
        }
        return;
    }
    println!("The seven histories of 'A Critique of Snapshot Isolation' (EuroSys'12):\n");
    for (n, h) in examples::all() {
        analyze(&format!("H{n}"), &h);
    }
    println!("Legend: SI = snapshot isolation (write-write conflicts, Algorithm 1);");
    println!("        WSI = write-snapshot isolation (read-write conflicts, Algorithm 2);");
    println!("        serializable = the snapshot-semantics DSG is acyclic.");
}

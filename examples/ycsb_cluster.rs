//! A miniature of the paper's evaluation: a simulated HBase-style cluster
//! under the transactional YCSB workload, swept over client counts, for
//! both isolation levels.
//!
//! The full-scale sweeps that regenerate the paper's figures live in
//! `cargo run -p wsi-bench --release --bin figures`; this example runs a
//! scaled-down version in a few seconds and prints the same kind of table.
//!
//! ```text
//! cargo run --release --example ycsb_cluster [-- uniform|zipf|latest]
//! ```

use writesnap::cluster::{ClusterConfig, Runner};
use writesnap::core::IsolationLevel;
use writesnap::sim::SimTime;
use writesnap::workload::{KeyDistribution, Mix};

fn main() {
    let dist = match std::env::args().nth(1).as_deref() {
        Some("uniform") => KeyDistribution::Uniform,
        Some("latest") => KeyDistribution::ZipfianLatest,
        _ => KeyDistribution::Zipfian,
    };
    println!("distribution: {dist:?}, mixed workload (50% read-only, 50% complex)");
    println!("25 region servers, 1 status oracle, scaled-down 10 s windows\n");
    println!(
        "{:<10} {:>8} {:>12} {:>14} {:>12} {:>10}",
        "level", "clients", "tps", "latency_ms", "abort_rate", "cache_hit"
    );
    for level in [IsolationLevel::Snapshot, IsolationLevel::WriteSnapshot] {
        for clients in [5usize, 20, 80, 320] {
            let mut cfg = ClusterConfig::hbase(level, clients, dist, Mix::Mixed, 1);
            cfg.warmup = SimTime::from_secs(3);
            cfg.measure = SimTime::from_secs(10);
            let r = Runner::new(cfg).run();
            println!(
                "{:<10} {:>8} {:>12.1} {:>14.1} {:>12.3} {:>10.3}",
                level.short_name(),
                clients,
                r.tps,
                r.mean_latency_ms,
                r.abort_rate,
                r.cache_hit_rate
            );
        }
    }
    println!("\nBoth levels track each other closely — the paper's core claim:");
    println!("serializability (WSI) at the price of snapshot isolation.");
}

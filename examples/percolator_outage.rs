//! The lock-based failure mode (paper §2.1): a client that dies mid-commit
//! under Percolator-style snapshot isolation strands its locks, blocking
//! readers and writers until recovery — while the lock-free design keeps
//! everyone moving.
//!
//! ```text
//! cargo run --example percolator_outage
//! ```

use writesnap::core::IsolationLevel;
use writesnap::store::percolator::{CrashPoint, LockResolution, PercolatorDb};
use writesnap::store::{Db, DbOptions, Error};

fn percolator_side() {
    println!("== Percolator (lock-based SI, §2.1) ==");
    let db = PercolatorDb::open();
    let mut seed = db.begin();
    seed.put(b"inventory/widgets", b"100");
    seed.commit().unwrap();

    // A client prewrites (locks) and dies before committing.
    let mut doomed = db.begin();
    doomed.put(b"inventory/widgets", b"99");
    doomed
        .commit_with_crash(CrashPoint::AfterPrewrite)
        .expect("crash injection");
    println!("client crashed after prewrite; lock stranded on inventory/widgets");

    // Readers now block on the lock...
    let mut reader = db.begin();
    match reader.get(b"inventory/widgets") {
        Err(Error::KeyLocked { .. }) => println!("reader: blocked by the dead client's lock"),
        other => panic!("expected KeyLocked, got {other:?}"),
    }
    // ...and so do writers.
    let mut writer = db.begin();
    writer.put(b"inventory/widgets", b"42");
    match writer.commit() {
        Err(Error::KeyLocked { .. }) => println!("writer: blocked by the dead client's lock"),
        other => panic!("expected KeyLocked, got {other:?}"),
    }

    // Only after a liveness timeout may someone clean up on the dead
    // client's behalf ("the locks a failed or slow transaction holds prevent
    // the others from making progress during recovery").
    assert_eq!(
        db.resolve_lock(b"inventory/widgets", false),
        LockResolution::OwnerMaybeAlive
    );
    println!("cleanup without timeout: refused (owner might be alive)");
    assert_eq!(
        db.resolve_lock(b"inventory/widgets", true),
        LockResolution::RolledBack
    );
    println!("cleanup after timeout: rolled back; store usable again");
    let mut reader = db.begin();
    assert_eq!(
        reader.get(b"inventory/widgets").unwrap().as_deref(),
        Some(&b"100"[..])
    );
    println!();
}

fn lockfree_side() {
    println!("== Lock-free (status oracle, §2.2/§5) ==");
    let db = Db::open(DbOptions::new(IsolationLevel::WriteSnapshot));
    let mut seed = db.begin();
    seed.put(b"inventory/widgets", b"100");
    seed.commit().unwrap();

    // A client buffers a write and dies before commit: its transaction
    // simply never reaches the oracle. Nothing is locked, nobody waits.
    let mut doomed = db.begin();
    doomed.put(b"inventory/widgets", b"99");
    std::mem::drop(doomed); // the handle rolls back on drop, as a crash would

    let mut reader = db.begin();
    assert_eq!(reader.get(b"inventory/widgets").unwrap().as_ref(), b"100");
    println!("reader: unaffected by the dead client");

    let mut writer = db.begin();
    writer.put(b"inventory/widgets", b"42");
    writer.commit().expect("no locks to strand");
    println!("writer: committed immediately");
    println!("\nno locks -> a failed client costs nothing but its own transaction");
}

fn main() {
    percolator_side();
    lockfree_side();
}

//! Quickstart: the embedded transactional store in five minutes.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use writesnap::core::IsolationLevel;
use writesnap::store::{Db, DbOptions, Error};

fn main() {
    // Open an in-memory multi-version store. `WriteSnapshot` gives you
    // serializable transactions at snapshot-isolation cost; `Snapshot` gives
    // you classic SI (write-write conflict detection only).
    let db = Db::open(DbOptions::new(IsolationLevel::WriteSnapshot));

    // Transactions buffer writes locally and validate at commit.
    let mut setup = db.begin();
    setup.put(b"user/1/name", b"ada");
    setup.put(b"user/2/name", b"grace");
    setup.commit().expect("no concurrent writers yet");

    // Reads come from the snapshot taken at `begin`.
    let mut reader = db.begin();
    assert_eq!(reader.get(b"user/1/name").as_deref(), Some(&b"ada"[..]));

    // A concurrent writer does not disturb the reader's snapshot...
    let mut writer = db.begin();
    writer.put(b"user/1/name", b"ada lovelace");
    writer.commit().unwrap();
    assert_eq!(
        reader.get(b"user/1/name").as_deref(),
        Some(&b"ada"[..]),
        "snapshot reads are stable"
    );

    // ...and the reader still commits: read-only transactions never abort.
    reader.commit().unwrap();

    // Conflicts surface at commit as retryable errors. This transaction read
    // a row that a concurrent transaction modified, so write-snapshot
    // isolation aborts it rather than risk a non-serializable execution.
    let mut t1 = db.begin();
    let _stale = t1.get(b"user/2/name");
    let mut t2 = db.begin();
    t2.put(b"user/2/name", b"grace hopper");
    t2.commit().unwrap();
    t1.put(b"user/1/name", b"based on stale read");
    match t1.commit() {
        Err(e @ Error::Aborted(_)) => {
            println!("conflict detected as expected: {e}");
            assert!(e.is_retryable());
        }
        other => panic!("expected a read-write conflict, got {other:?}"),
    }

    // Range scans see the snapshot too.
    let mut scanner = db.begin();
    let users = scanner.scan(b"user/", None, 10);
    println!("{} user rows:", users.len());
    for (k, v) in &users {
        println!(
            "  {} = {}",
            String::from_utf8_lossy(k),
            String::from_utf8_lossy(v)
        );
    }

    // Garbage-collect superseded versions once old snapshots are gone.
    drop(scanner);
    let stats = db.gc();
    println!("gc dropped {} superseded versions", stats.versions_dropped);
    println!("final stats: {:?}", db.stats().oracle);
}

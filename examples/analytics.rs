//! Analytical transactions with compact read sets (paper §5.2).
//!
//! "The read set could become very large and submitting that to the status
//! oracle could be expensive. … analytical transactions could submit to the
//! status oracle a compact, over-approximated representation of the read
//! set, e.g., table name and row ranges."
//!
//! This example runs an OLTP stream against the status oracle while an
//! analytical scan commits with (a) its full enumerated read set and (b) a
//! single row range, and reports the size/abort trade-off.
//!
//! ```text
//! cargo run --release --example analytics
//! ```

use writesnap::core::{CommitRequest, IsolationLevel, RowId, RowRange, StatusOracleCore};
use writesnap::sim::SimRng;

const ROWS: u64 = 1_000_000;
const SCANS: usize = 300;
const OLTP_PER_SCAN: usize = 100;

fn run(scan_width: u64, use_range: bool, seed: u64) -> (f64, usize) {
    let mut oracle = StatusOracleCore::unbounded(IsolationLevel::WriteSnapshot);
    let mut rng = SimRng::new(seed);
    let mut aborts = 0usize;
    let mut request_entries = 0usize;
    for _ in 0..SCANS {
        let scan_ts = oracle.begin();
        let lo = rng.below(ROWS - scan_width);
        // OLTP transactions commit while the scan runs.
        for _ in 0..OLTP_PER_SCAN {
            let t = oracle.begin();
            let row = RowId(rng.below(ROWS));
            let _ = oracle.commit(CommitRequest::new(t, vec![row], vec![row]));
        }
        // The scan writes its aggregate to a stats row and commits.
        let stats_row = RowId(ROWS + 7);
        let req = if use_range {
            request_entries += 1;
            CommitRequest::new(scan_ts, vec![], vec![stats_row])
                .with_read_ranges(vec![RowRange::new(lo, lo + scan_width)])
        } else {
            // The scan "actually read" every other row in its window.
            let reads: Vec<RowId> = (lo..lo + scan_width).step_by(2).map(RowId).collect();
            request_entries += reads.len();
            CommitRequest::new(scan_ts, reads, vec![stats_row])
        };
        if oracle.commit(req).is_aborted() {
            aborts += 1;
        }
    }
    (
        aborts as f64 / SCANS as f64,
        request_entries / SCANS, // mean entries per commit request
    )
}

fn main() {
    println!("analytical scans over a {ROWS}-row table, {OLTP_PER_SCAN} OLTP commits per scan\n");
    println!(
        "{:>12} {:>24} {:>24}",
        "scan width", "enumerated (abort/entries)", "range (abort/entries)"
    );
    for width in [100u64, 1_000, 10_000, 50_000] {
        let (full_abort, full_entries) = run(width, false, 1);
        let (range_abort, range_entries) = run(width, true, 1);
        println!(
            "{:>12} {:>15.1}% / {:<6} {:>15.1}% / {:<6}",
            width,
            full_abort * 100.0,
            full_entries,
            range_abort * 100.0,
            range_entries
        );
    }
    println!("\nThe range representation shrinks the commit request by orders of");
    println!("magnitude; the price is over-approximation — rows the scan never");
    println!("returned still count as conflicts. Both abort rates climb with scan");
    println!("width, which is §5.2's 'more fundamental' challenge: beyond a point,");
    println!("analytical transactions must bypass conflict checking entirely.");
}

//! Write skew, live: why snapshot isolation corrupts invariants that
//! write-snapshot isolation preserves.
//!
//! The paper's §3.1 example: a constraint `x + y > 0` with `x = y = 1`.
//! Each transaction withdraws from *its* account only if the constraint
//! still holds afterwards. Under snapshot isolation two concurrent
//! withdrawals validate against the same snapshot and both commit, driving
//! the sum to 0 — *write skew* (History 2) — even though each transaction
//! alone checked the constraint. Under write-snapshot isolation one of them
//! aborts and the constraint survives.
//!
//! This example runs the scenario with real threads against both isolation
//! levels and reports whether the invariant survived.
//!
//! ```text
//! cargo run --example banking
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

use writesnap::core::IsolationLevel;
use writesnap::store::{Db, DbOptions};

const ACCOUNTS: [&[u8]; 2] = [b"account/x", b"account/y"];
const ROUNDS: usize = 200;

fn read_balance(t: &mut writesnap::store::Transaction, key: &[u8]) -> i64 {
    t.get(key)
        .map(|v| {
            String::from_utf8_lossy(&v)
                .parse()
                .expect("numeric balance")
        })
        .unwrap_or(0)
}

/// One thread repeatedly tries: "if x + y > 0 would still hold, withdraw 1
/// from my account". The barrier forces both threads to begin each round
/// concurrently, so their transactions genuinely overlap.
fn withdrawer(
    db: Db,
    my_account: &'static [u8],
    withdrawals: Arc<AtomicU64>,
    barrier: Arc<Barrier>,
) {
    for _ in 0..ROUNDS {
        barrier.wait(); // both threads take their snapshots together
        let mut t = db.begin();
        let total: i64 = ACCOUNTS.iter().map(|a| read_balance(&mut t, a)).sum();
        let withdraw = total - 1 > 0; // would x + y > 0 still hold?
        if withdraw {
            let mine = read_balance(&mut t, my_account);
            t.put(my_account, (mine - 1).to_string().as_bytes());
        }
        barrier.wait(); // both threads validated before either commits
        if withdraw {
            if t.commit().is_ok() {
                withdrawals.fetch_add(1, Ordering::Relaxed);
            }
            // On abort: a concurrent withdrawal invalidated our snapshot. A
            // real application would retry; here the loop simply continues.
        } else {
            t.rollback(); // no slack: the application refuses
        }
    }
}

fn run(level: IsolationLevel) -> (i64, u64) {
    let db = Db::open(DbOptions::new(level));
    let mut seed = db.begin();
    seed.put(ACCOUNTS[0], b"1");
    seed.put(ACCOUNTS[1], b"1");
    seed.commit().unwrap();

    let withdrawals = Arc::new(AtomicU64::new(0));
    let barrier = Arc::new(Barrier::new(ACCOUNTS.len()));
    let handles: Vec<_> = ACCOUNTS
        .iter()
        .map(|&account| {
            let db = db.clone();
            let w = Arc::clone(&withdrawals);
            let b = Arc::clone(&barrier);
            std::thread::spawn(move || withdrawer(db, account, w, b))
        })
        .collect();
    for h in handles {
        h.join().expect("withdrawer panicked");
    }

    let mut check = db.begin();
    let total: i64 = ACCOUNTS.iter().map(|a| read_balance(&mut check, a)).sum();
    (total, withdrawals.load(Ordering::Relaxed))
}

fn main() {
    println!("invariant: x + y > 0 must hold before every withdrawal (start: x = y = 1)\n");
    for level in [IsolationLevel::Snapshot, IsolationLevel::WriteSnapshot] {
        let (total, withdrawals) = run(level);
        let verdict = if total > 0 { "preserved" } else { "VIOLATED" };
        println!(
            "{level:<28} withdrawals: {withdrawals:>3}   final x+y = {total:>3}   invariant {verdict}"
        );
        match level {
            IsolationLevel::Snapshot => {
                // Write skew is a race: with 200 rounds of two racing
                // threads it is overwhelmingly likely, but not certain.
                if total <= 0 {
                    println!(
                        "  -> write skew: both withdrawals validated the same snapshot (History 2)"
                    );
                }
            }
            IsolationLevel::WriteSnapshot => {
                assert!(
                    total > 0,
                    "write-snapshot isolation is serializable; the invariant cannot break"
                );
                println!("  -> read-write conflict detection aborted one of each racing pair");
            }
        }
    }
}

//! Offline stand-in for the `spin` crate.
//!
//! The workspace vendors the handful of external crates it uses as minimal
//! local implementations (see `stubs/README.md`), so the build is hermetic.
//! This one provides `spin::Mutex`: a test-and-set spinlock whose
//! uncontended lock/unlock is a single compare-exchange plus a release
//! store — a fraction of the cost of a general-purpose blocking mutex, which
//! is the point of using it for critical sections that are a few memory
//! operations long.
//!
//! One deliberate divergence from the real crate: after a short bounded spin
//! a waiter calls `std::thread::yield_now()` instead of spinning forever.
//! The real `spin` crate is `no_std` and cannot yield; on the small hosts
//! this workspace tests on (including single-core machines, where a pure
//! spin against a descheduled lock holder burns the whole timeslice) the
//! yield fallback is strictly better and changes no semantics.

use std::cell::UnsafeCell;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, Ordering};

/// How many busy-spin iterations to attempt before yielding the CPU.
const SPINS_BEFORE_YIELD: u32 = 64;

/// A test-and-set spinlock protecting `T`.
pub struct Mutex<T: ?Sized> {
    locked: AtomicBool,
    data: UnsafeCell<T>,
}

// SAFETY: the lock provides the exclusion; `T: Send` is all that is needed
// to move or share the mutex across threads (same bounds as `std`'s).
unsafe impl<T: ?Sized + Send> Send for Mutex<T> {}
unsafe impl<T: ?Sized + Send> Sync for Mutex<T> {}

/// RAII guard for [`Mutex`]; releases the lock on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    lock: &'a Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            locked: AtomicBool::new(false),
            data: UnsafeCell::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, spinning (then yielding) until it is free.
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        loop {
            if let Some(guard) = self.try_lock() {
                return guard;
            }
            // Wait for the holder to release before retrying the RMW, so
            // waiters hammer a shared read instead of the cache line's
            // exclusive state; yield once the wait stops being short.
            let mut spins = 0u32;
            while self.locked.load(Ordering::Relaxed) {
                spins += 1;
                if spins < SPINS_BEFORE_YIELD {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Attempts to acquire the lock without waiting.
    #[inline]
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        if self
            .locked
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            Some(MutexGuard { lock: self })
        } else {
            None
        }
    }

    /// Whether the lock is currently held by someone.
    pub fn is_locked(&self) -> bool {
        self.locked.load(Ordering::Relaxed)
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.data.get_mut()
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        // SAFETY: the guard exists only while the lock is held, and the lock
        // is exclusive, so no other reference to the data can be live.
        unsafe { &*self.lock.data.get() }
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as above; `&mut self` additionally guarantees this guard
        // itself hands out no aliasing borrow.
        unsafe { &mut *self.lock.data.get() }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    #[inline]
    fn drop(&mut self) {
        self.lock.locked.store(false, Ordering::Release);
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn lock_round_trips_value() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_fails_while_held() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.is_locked());
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(!m.is_locked());
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn get_mut_bypasses_locking() {
        let mut m = Mutex::new(1);
        *m.get_mut() = 7;
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn contended_increments_are_exclusive() {
        let m = Arc::new(Mutex::new(0u64));
        let threads = 8;
        let per_thread = 10_000u64;
        thread::scope(|s| {
            for _ in 0..threads {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..per_thread {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), threads as u64 * per_thread);
    }

    #[test]
    fn debug_formats_without_deadlock() {
        let m = Mutex::new(5);
        assert!(format!("{m:?}").contains('5'));
        let g = m.lock();
        assert!(format!("{m:?}").contains("locked"));
        drop(g);
    }
}

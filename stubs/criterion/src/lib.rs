//! Offline stand-in for the `criterion` crate (see `stubs/README.md`).
//!
//! Implements the harness surface the workspace's benches use:
//! `criterion_group!` / `criterion_main!`, [`Criterion::benchmark_group`],
//! `bench_function` / `bench_with_input`, [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`Throughput`], [`BenchmarkId`], and
//! [`BatchSize`]. Instead of criterion's statistical sampling it runs each
//! routine for a small fixed budget and prints one line of mean wall-clock
//! per iteration — enough to compare configurations and to keep
//! `cargo test` / `cargo bench` runs fast and dependency-free.

pub use std::hint::black_box;

use std::time::{Duration, Instant};

/// Iterations each routine runs after one warm-up call.
const ITERS: u64 = 25;
/// Wall-clock budget per routine; iteration stops early past this.
const BUDGET: Duration = Duration::from_millis(200);

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Applies command-line configuration (accepted and ignored).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _criterion: self,
        }
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, &mut f);
        self
    }
}

/// A named collection of benchmarks sharing throughput/config settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration throughput (recorded, not reported).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Sets the sample count (accepted and ignored; the stub's budget is
    /// fixed).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement time (accepted and ignored).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().label);
        run_one(&label, &mut f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().label);
        run_one(&label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark identifier: function name plus parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Things accepted where a benchmark id is expected (`&str` or
/// [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// Converts to a concrete id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            label: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self }
    }
}

/// Per-iteration throughput declaration.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Batch-size hint for [`Bencher::iter_batched`].
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Passed to each benchmark closure; drives the measured iterations.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    total: Duration,
}

impl Bencher {
    /// Times `routine` over the stub's fixed iteration budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warm-up, outside the timed window
        let started = Instant::now();
        for _ in 0..ITERS {
            black_box(routine());
            self.iters += 1;
            if started.elapsed() > BUDGET {
                break;
            }
        }
        self.total = started.elapsed();
    }

    /// Times `routine` on fresh inputs from `setup`; only the routine is
    /// in the timed window.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup())); // warm-up
        let mut timed = Duration::ZERO;
        for _ in 0..ITERS {
            let input = setup();
            let started = Instant::now();
            black_box(routine(input));
            timed += started.elapsed();
            self.iters += 1;
            if timed > BUDGET {
                break;
            }
        }
        self.total = timed;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, f: &mut F) {
    let mut bencher = Bencher::default();
    f(&mut bencher);
    let mean = if bencher.iters > 0 {
        bencher.total / u32::try_from(bencher.iters).unwrap_or(u32::MAX)
    } else {
        Duration::ZERO
    };
    println!("bench {label}: {mean:?}/iter ({} iters)", bencher.iters);
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub");
        group.throughput(Throughput::Elements(1));
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("square", 7), &7u64, |b, &n| {
            b.iter(|| n * n)
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs_groups() {
        benches();
    }

    #[test]
    fn bencher_counts_iterations() {
        let mut b = Bencher::default();
        b.iter(|| 1 + 1);
        assert!(b.iters > 0);
    }
}

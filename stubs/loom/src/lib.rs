//! Offline stand-in for the `loom` model checker.
//!
//! The workspace vendors the handful of external crates it uses as minimal
//! local implementations (see `stubs/README.md`), so the build is hermetic.
//! The real `loom` exhaustively enumerates thread interleavings under the
//! C11 memory model via DPOR. This stub approximates that with **seeded
//! schedule fuzzing**: [`model`] runs the closure many times (default 64,
//! override with `LOOM_MAX_ITERS`), and every instrumented atomic operation
//! may call `thread::yield_now` with ~1/8 probability from a per-thread
//! deterministic xorshift stream reseeded each iteration. Real threads plus
//! forced preemption at the exact points loom would context-switch shakes
//! out ordering bugs far more effectively than free-running threads, while
//! keeping the same test source compatible with the real checker.
//!
//! **What this does not give you:** exhaustiveness (no DPOR, no store
//! buffering/weak-memory simulation — x86-ish TSO only) and no
//! deterministic counterexample replay. A passing run is strong evidence,
//! not a proof. The protocol tests that use this stub are written so their
//! *assertions* are exact; only the schedule coverage is sampled.

use std::cell::Cell;

thread_local! {
    /// Per-thread xorshift state driving yield decisions. Zero = inactive
    /// (threads outside a [`model`] run never yield).
    static RNG: Cell<u64> = const { Cell::new(0) };
}

/// Probability denominator: yield on ~1/8 of instrumented operations.
const YIELD_MASK: u64 = 0x7;

fn tick() {
    RNG.with(|rng| {
        let mut s = rng.get();
        if s == 0 {
            return;
        }
        // xorshift64
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        rng.set(s);
        if s & YIELD_MASK == 0 {
            std::thread::yield_now();
        }
    });
}

fn seed_current(seed: u64) {
    RNG.with(|rng| rng.set(seed | 1));
}

/// Runs `f` under the schedule fuzzer: `LOOM_MAX_ITERS` iterations (default
/// 64), each with a distinct deterministic seed stream.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    let iters: u64 = std::env::var("LOOM_MAX_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    for i in 0..iters {
        seed_current(0x9E37_79B9_7F4A_7C15_u64.wrapping_mul(i + 1));
        f();
    }
    RNG.with(|rng| rng.set(0));
}

/// Runs `f` once under a caller-chosen schedule seed.
///
/// This is the stub's extension point for external harnesses (the `wsi-dst`
/// deterministic stress runner derives per-run yield streams from its own
/// master seed): where [`model`] sweeps a fixed family of seeds, this
/// executes exactly one schedule, reproducibly — the same seed yields the
/// same preemption decisions at the same instrumented operations on the
/// calling thread (spawned threads derive their streams from the caller's,
/// so a whole model run is a function of `seed` and the code under test).
pub fn model_seeded<F>(seed: u64, f: F)
where
    F: FnOnce(),
{
    seed_current(seed | 1);
    f();
    RNG.with(|rng| rng.set(0));
}

/// Instrumented substitutes for `std::thread`.
pub mod thread {
    use super::{seed_current, RNG};

    /// Handle to a spawned model thread.
    pub struct JoinHandle<T>(std::thread::JoinHandle<T>);

    impl<T> JoinHandle<T> {
        /// Waits for the thread to finish, propagating panics.
        pub fn join(self) -> std::thread::Result<T> {
            self.0.join()
        }
    }

    /// Spawns a thread participating in the schedule fuzz: it inherits a
    /// seed derived from the spawner's stream, so its yield pattern varies
    /// across [`super::model`] iterations too.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let parent = RNG.with(|rng| rng.get());
        let child_seed = parent.wrapping_mul(6364136223846793005).wrapping_add(1);
        JoinHandle(std::thread::spawn(move || {
            seed_current(child_seed);
            f()
        }))
    }

    /// Cooperative yield (also a fuzz point in the real loom).
    pub fn yield_now() {
        std::thread::yield_now();
    }
}

/// Instrumented substitutes for `std::hint`.
pub mod hint {
    /// Spin-loop hint; also a scheduling point under the fuzzer.
    pub fn spin_loop() {
        super::tick();
        std::hint::spin_loop();
    }
}

/// Instrumented substitutes for `std::sync`.
pub mod sync {
    pub use std::sync::Arc;

    /// A mutex with loom's std-like API (no poisoning surfaced).
    #[derive(Debug, Default)]
    pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

    impl<T> Mutex<T> {
        /// Creates a mutex holding `value`.
        pub fn new(value: T) -> Self {
            Mutex(std::sync::Mutex::new(value))
        }
    }

    impl<T: ?Sized> Mutex<T> {
        /// Acquires the mutex (a scheduling point under the fuzzer).
        pub fn lock(
            &self,
        ) -> Result<std::sync::MutexGuard<'_, T>, std::sync::PoisonError<std::sync::MutexGuard<'_, T>>>
        {
            super::tick();
            self.0.lock()
        }

        /// Attempts to acquire without blocking.
        pub fn try_lock(
            &self,
        ) -> std::sync::TryLockResult<std::sync::MutexGuard<'_, T>> {
            super::tick();
            self.0.try_lock()
        }
    }

    /// Instrumented atomics: every operation is a potential preemption
    /// point, which is where the fuzzer injects yields.
    pub mod atomic {
        pub use std::sync::atomic::Ordering;

        macro_rules! atomic_stub {
            ($name:ident, $std:ty, $val:ty) => {
                /// Instrumented atomic; see the crate docs.
                #[derive(Debug, Default)]
                pub struct $name(pub(crate) $std);

                impl $name {
                    /// Creates a new atomic.
                    pub fn new(v: $val) -> Self {
                        Self(<$std>::new(v))
                    }

                    /// Instrumented load.
                    pub fn load(&self, order: Ordering) -> $val {
                        crate::tick();
                        self.0.load(order)
                    }

                    /// Instrumented store.
                    pub fn store(&self, v: $val, order: Ordering) {
                        crate::tick();
                        self.0.store(v, order);
                    }

                    /// Instrumented swap.
                    pub fn swap(&self, v: $val, order: Ordering) -> $val {
                        crate::tick();
                        self.0.swap(v, order)
                    }

                    /// Instrumented compare-exchange.
                    pub fn compare_exchange(
                        &self,
                        current: $val,
                        new: $val,
                        success: Ordering,
                        failure: Ordering,
                    ) -> Result<$val, $val> {
                        crate::tick();
                        self.0.compare_exchange(current, new, success, failure)
                    }

                    /// Instrumented weak compare-exchange.
                    pub fn compare_exchange_weak(
                        &self,
                        current: $val,
                        new: $val,
                        success: Ordering,
                        failure: Ordering,
                    ) -> Result<$val, $val> {
                        crate::tick();
                        self.0.compare_exchange_weak(current, new, success, failure)
                    }

                    /// Instrumented fetch-add.
                    pub fn fetch_add(&self, v: $val, order: Ordering) -> $val {
                        crate::tick();
                        self.0.fetch_add(v, order)
                    }

                    /// Instrumented fetch-max.
                    pub fn fetch_max(&self, v: $val, order: Ordering) -> $val {
                        crate::tick();
                        self.0.fetch_max(v, order)
                    }

                    /// Instrumented fetch-or.
                    pub fn fetch_or(&self, v: $val, order: Ordering) -> $val {
                        crate::tick();
                        self.0.fetch_or(v, order)
                    }

                    /// Instrumented fetch-and.
                    pub fn fetch_and(&self, v: $val, order: Ordering) -> $val {
                        crate::tick();
                        self.0.fetch_and(v, order)
                    }
                }
            };
        }

        atomic_stub!(AtomicU32, std::sync::atomic::AtomicU32, u32);
        atomic_stub!(AtomicU64, std::sync::atomic::AtomicU64, u64);
        atomic_stub!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);

        /// Instrumented atomic bool; see the crate docs.
        #[derive(Debug, Default)]
        pub struct AtomicBool(std::sync::atomic::AtomicBool);

        impl AtomicBool {
            /// Creates a new atomic bool.
            pub fn new(v: bool) -> Self {
                AtomicBool(std::sync::atomic::AtomicBool::new(v))
            }

            /// Instrumented load.
            pub fn load(&self, order: Ordering) -> bool {
                crate::tick();
                self.0.load(order)
            }

            /// Instrumented store.
            pub fn store(&self, v: bool, order: Ordering) {
                crate::tick();
                self.0.store(v, order);
            }

            /// Instrumented compare-exchange.
            pub fn compare_exchange(
                &self,
                current: bool,
                new: bool,
                success: Ordering,
                failure: Ordering,
            ) -> Result<bool, bool> {
                crate::tick();
                self.0.compare_exchange(current, new, success, failure)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicU64, Ordering};
    use super::*;
    use std::sync::Arc;

    #[test]
    fn model_runs_the_closure_many_times() {
        static RUNS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        model(|| {
            RUNS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        });
        assert!(RUNS.load(std::sync::atomic::Ordering::Relaxed) >= 2);
    }

    #[test]
    fn fuzzed_cas_retains_atomicity() {
        model(|| {
            let total = Arc::new(AtomicU64::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let total = Arc::clone(&total);
                    thread::spawn(move || {
                        for _ in 0..64 {
                            let mut cur = total.load(Ordering::Relaxed);
                            loop {
                                match total.compare_exchange(
                                    cur,
                                    cur + 1,
                                    Ordering::AcqRel,
                                    Ordering::Relaxed,
                                ) {
                                    Ok(_) => break,
                                    Err(now) => cur = now,
                                }
                            }
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(total.load(Ordering::Relaxed), 128);
        });
    }

    #[test]
    fn seeded_streams_differ_across_iterations() {
        // Smoke-check the seeding plumbing: the RNG must be armed inside
        // model() and disarmed after.
        model(|| {
            RNG.with(|rng| assert_ne!(rng.get(), 0, "armed inside model"));
        });
        RNG.with(|rng| assert_eq!(rng.get(), 0, "disarmed after model"));
    }
}

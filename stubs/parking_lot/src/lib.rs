//! Offline stand-in for the `parking_lot` crate.
//!
//! The workspace vendors the handful of external crates it uses as minimal
//! local implementations (see `stubs/README.md`), so the build is hermetic.
//! This one maps `parking_lot`'s no-poisoning lock API onto `std::sync`:
//! a poisoned std lock is entered anyway (`PoisonError::into_inner`), which
//! matches parking_lot's behavior of not tracking poisoning at all.

use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A mutex that does not track poisoning.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`].
///
/// Wraps the std guard in an `Option` so [`Condvar::wait`] can move it
/// through `std::sync::Condvar::wait` (which consumes and returns the
/// guard) while presenting parking_lot's `&mut guard` interface.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_deref().expect("guard vacated only inside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_deref_mut().expect("guard vacated only inside wait")
    }
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is free.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(
            self.0.lock().unwrap_or_else(PoisonError::into_inner),
        ))
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(MutexGuard(Some(guard))),
            Err(std::sync::TryLockError::Poisoned(p)) => {
                Some(MutexGuard(Some(p.into_inner())))
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock that does not track poisoning.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A condition variable paired with [`Mutex`].
#[derive(Default, Debug)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Atomically releases the guard's mutex and blocks until notified;
    /// the lock is re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard vacated only inside wait");
        guard.0 = Some(self.0.wait(inner).unwrap_or_else(PoisonError::into_inner));
    }

    /// Wakes one waiter. Always reports `true` (std does not say whether a
    /// thread was woken).
    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    /// Wakes every waiter. Always reports `0` woken (std does not count).
    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }

    #[test]
    fn rwlock_try_variants() {
        let l = RwLock::new(5);
        {
            let r = l.try_read().expect("uncontended try_read succeeds");
            assert_eq!(*r, 5);
            assert!(l.try_write().is_none(), "reader blocks try_write");
        }
        {
            let w = l.try_write().expect("uncontended try_write succeeds");
            assert_eq!(*w, 5);
            assert!(l.try_read().is_none(), "writer blocks try_read");
        }
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let handle = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        *pair.0.lock() = true;
        pair.1.notify_all();
        handle.join().unwrap();
    }
}

//! Offline stand-in for the `proptest` crate (see `stubs/README.md`).
//!
//! Implements the subset the workspace's property tests use: the
//! [`strategy::Strategy`] trait with `prop_map` / `prop_flat_map` /
//! `boxed`, range and tuple strategies, [`strategy::Just`],
//! [`arbitrary::any`], [`collection::vec`], the `proptest!`,
//! `prop_oneof!`, `prop_assert!`, `prop_assert_eq!` and `prop_assume!`
//! macros, and [`test_runner::ProptestConfig`].
//!
//! Differences from the real crate: cases are generated from a
//! deterministic per-test seed (the hash of the test name), and failing
//! inputs are **not shrunk** — the failure message carries the full
//! generated input via `Debug` where the assertion macros are given one.

pub mod test_runner {
    //! The case-running machinery: config and RNG.

    /// Per-test configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Deterministic generator driving case generation (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from a test name, so every test gets a stable, distinct
        /// stream.
        pub fn from_name(name: &str) -> Self {
            let mut state = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                state ^= u64::from(b);
                state = state.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state }
        }

        /// Next uniform 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "below(0)");
            self.next_u64() % bound
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Generates an intermediate value, then generates from the
        /// strategy `f` builds out of it.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                gen: std::rc::Rc::new(move |rng| self.generate(rng)),
            }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, S2> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// A type-erased strategy (see [`Strategy::boxed`]).
    #[derive(Clone)]
    pub struct BoxedStrategy<T> {
        gen: std::rc::Rc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.gen)(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Weighted choice between strategies (built by `prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
    }

    impl<T> Union<T> {
        /// Builds from `(weight, strategy)` arms.
        ///
        /// # Panics
        ///
        /// Panics if `arms` is empty or all weights are zero.
        pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total > 0, "prop_oneof! needs a positive total weight");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let total: u64 = self.arms.iter().map(|(w, _)| u64::from(*w)).sum();
            let mut pick = rng.below(total);
            for (w, arm) in &self.arms {
                let w = u64::from(*w);
                if pick < w {
                    return arm.generate(rng);
                }
                pick -= w;
            }
            unreachable!("pick < total by construction")
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % width) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let width = (end as i128 - start as i128 + 1) as u128;
                    (start as i128 + (rng.next_u64() as u128 % width) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (start, end) = (*self.start(), *self.end());
            assert!(start <= end, "empty range strategy");
            start + rng.unit_f64() * (end - start)
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    //! Default strategies per type ([`any`]).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }

    /// The full-range strategy for `T`.
    #[derive(Debug, Clone, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Returns the canonical strategy for `T` (`any::<u64>()` etc.).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies ([`vec`]).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An inclusive length range for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        /// Smallest allowed length.
        pub min: usize,
        /// Largest allowed length.
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec length range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Generates `Vec`s whose length falls in `size` and whose elements
    /// come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec<S::Value>` strategy with length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min + 1) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies ([`of`]).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Generates `Some` from the inner strategy half the time, else `None`.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// An `Option<S::Value>` strategy (50% `Some`).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 1 == 1 {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

pub mod prelude {
    //! Everything a property-test file needs, in one `use`.

    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Defines `#[test]` functions whose arguments are generated from
/// strategies, run for `ProptestConfig::cases` random cases each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)
     $($(#[$meta:meta])*
       fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::from_name(stringify!($name));
                for _case in 0..config.cases {
                    // The closure gives `prop_assume!` an early exit
                    // (plain `return`) without ending the whole test.
                    let mut one_case = |rng: &mut $crate::test_runner::TestRng| {
                        $(let $pat = $crate::strategy::Strategy::generate(&($strat), rng);)+
                        $body
                    };
                    one_case(&mut rng);
                }
            }
        )*
    };
}

/// Weighted (`w => strategy`) or uniform choice between strategies with a
/// common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Skips the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Color {
        Red,
        Green(u8),
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn ranges_stay_in_bounds(a in 3u64..9, b in 2usize..=4, f in 0.0f64..0.5) {
            prop_assert!((3..9).contains(&a));
            prop_assert!((2..=4).contains(&b));
            prop_assert!((0.0..0.5).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_range(v in prop::collection::vec(any::<u8>(), 1..5)) {
            prop_assert!((1..=4).contains(&v.len()));
        }

        #[test]
        fn oneof_maps_and_flat_maps(
            c in prop_oneof![3 => Just(Color::Red), 1 => any::<u8>().prop_map(Color::Green)],
            pair in (1usize..4).prop_flat_map(|n| {
                (Just(n), prop::collection::vec(0u64..10, n..=n))
            }),
        ) {
            match c {
                Color::Red | Color::Green(_) => {}
            }
            prop_assert_eq!(pair.0, pair.1.len());
        }

        #[test]
        fn assume_skips_cases(x in 0u64..10) {
            prop_assume!(x != 3);
            prop_assert!(x != 3);
        }
    }

    #[test]
    fn union_weights_bias_choice() {
        let strat = prop_oneof![9 => Just(true), 1 => Just(false)];
        let mut rng = crate::test_runner::TestRng::from_name("weights");
        let trues = (0..1000)
            .filter(|_| crate::strategy::Strategy::generate(&strat, &mut rng))
            .count();
        assert!((800..1000).contains(&trues), "trues {trues}");
    }
}

//! Offline stand-in for the `bytes` crate (see `stubs/README.md`).
//!
//! [`Bytes`] is a cheaply cloneable, immutable byte buffer: an `Arc<[u8]>`
//! plus a sub-range, so `clone` and [`Bytes::slice`] are O(1) refcount
//! bumps — the property the store's version chains and the WAL's payload
//! buffers rely on. [`BytesMut`] is a thin `Vec<u8>` builder that freezes
//! into a `Bytes`.

use std::borrow::Borrow;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable immutable byte buffer.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a static byte slice without copying.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        // One copy into the Arc; `bytes` keeps 'static semantics either way.
        Bytes::copy_from_slice(bytes)
    }

    /// Copies `bytes` into a new buffer.
    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        let data: Arc<[u8]> = Arc::from(bytes);
        Bytes {
            start: 0,
            end: data.len(),
            data,
        }
    }

    /// Bytes in the buffer.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A sub-buffer sharing the same backing allocation (O(1)).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            std::ops::Bound::Included(&n) => n,
            std::ops::Bound::Excluded(&n) => n + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            std::ops::Bound::Included(&n) => n + 1,
            std::ops::Bound::Excluded(&n) => n,
            std::ops::Bound::Unbounded => self.len(),
        };
        assert!(
            start <= end && end <= self.len(),
            "slice {start}..{end} out of bounds for Bytes of length {}",
            self.len()
        );
        Bytes {
            data: self.data.clone(),
            start: self.start + start,
            end: self.start + end,
        }
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = Arc::from(v);
        Bytes {
            start: 0,
            end: data.len(),
            data,
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<str> for Bytes {
    fn eq(&self, other: &str) -> bool {
        self.as_ref() == other.as_bytes()
    }
}

impl PartialEq<&str> for Bytes {
    fn eq(&self, other: &&str) -> bool {
        self.as_ref() == other.as_bytes()
    }
}

impl PartialEq<Bytes> for str {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_bytes() == other.as_ref()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_ref() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl std::iter::FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty builder with `capacity` bytes pre-reserved.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

/// The write half of the `bytes` buffer traits — the subset the WAL's
/// record encoder uses.
pub trait BufMut {
    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian u32.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u64.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_allocation() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(s.as_ref(), &[2, 3, 4]);
        assert_eq!(s.len(), 3);
        let s2 = s.slice(1..);
        assert_eq!(s2.as_ref(), &[3, 4]);
    }

    #[test]
    fn builder_roundtrip() {
        let mut m = BytesMut::with_capacity(16);
        m.put_u8(7);
        m.put_u32_le(0x0403_0201);
        m.put_u64_le(1);
        m.put_slice(b"xy");
        let b = m.freeze();
        assert_eq!(b.len(), 15);
        assert_eq!(&b[..5], &[7, 1, 2, 3, 4]);
        assert_eq!(&b[13..], b"xy");
    }

    #[test]
    fn ordering_and_equality_compare_contents() {
        let a = Bytes::from_static(b"abc");
        let b = Bytes::from(vec![b'a', b'b', b'c']);
        assert_eq!(a, b);
        assert!(Bytes::from_static(b"abd") > a);
        let mut map = std::collections::BTreeMap::new();
        map.insert(a.clone(), 1);
        assert_eq!(map.range(Bytes::from_static(b"a")..).count(), 1);
    }
}

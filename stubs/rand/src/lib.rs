//! Offline stand-in for the `rand` crate (see `stubs/README.md`).
//!
//! Provides [`rngs::SmallRng`] (xoshiro256++, seeded through SplitMix64 —
//! the same construction the real `SmallRng` family uses on 64-bit
//! targets) and the [`Rng`]/[`SeedableRng`] surface the workspace calls:
//! `gen_range` over integer and float ranges, `gen`, and `gen_bool`.
//! Sequences are deterministic per seed but not bit-compatible with the
//! real crate; nothing in-tree depends on the exact stream.

/// Types that can be sampled uniformly from the full `u64` stream.
pub trait Standard: Sized {
    /// Draws one value from `next` (a source of uniform `u64`s).
    fn draw(next: &mut dyn FnMut() -> u64) -> Self;
}

impl Standard for u64 {
    fn draw(next: &mut dyn FnMut() -> u64) -> Self {
        next()
    }
}

impl Standard for u32 {
    fn draw(next: &mut dyn FnMut() -> u64) -> Self {
        (next() >> 32) as u32
    }
}

impl Standard for u8 {
    fn draw(next: &mut dyn FnMut() -> u64) -> Self {
        (next() >> 56) as u8
    }
}

impl Standard for usize {
    fn draw(next: &mut dyn FnMut() -> u64) -> Self {
        next() as usize
    }
}

impl Standard for bool {
    fn draw(next: &mut dyn FnMut() -> u64) -> Self {
        next() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw(next: &mut dyn FnMut() -> u64) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that can be sampled by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value in the range from `next`.
    fn sample(self, next: &mut dyn FnMut() -> u64) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, next: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                // Modulo bias is < width / 2^64 — negligible for the
                // workload-sized ranges used in-tree.
                (self.start as i128 + (next() as u128 % width) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, next: &mut dyn FnMut() -> u64) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range on empty range");
                let width = (end as i128 - start as i128 + 1) as u128;
                (start as i128 + (next() as u128 % width) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample(self, next: &mut dyn FnMut() -> u64) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + f64::draw(next) * (self.end - self.start)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample(self, next: &mut dyn FnMut() -> u64) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range on empty range");
        start + f64::draw(next) * (end - start)
    }
}

/// The random-value interface.
pub trait Rng {
    /// The next uniform 64-bit value from the generator.
    fn next_u64(&mut self) -> u64;

    /// A uniform value in `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(&mut || self.next_u64())
    }

    /// A uniform value of `T` (full range for integers, `[0, 1)` for
    /// floats).
    #[allow(clippy::should_implement_trait)]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(&mut || self.next_u64())
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        self.gen::<f64>() < p
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Constructs from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generator types.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small, fast, non-cryptographic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            if s == [0; 4] {
                // The all-zero state is a fixed point; nudge it.
                s[0] = 1;
            }
            SmallRng { s }
        }

        fn seed_from_u64(mut state: u64) -> Self {
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            SmallRng { s }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn floats_cover_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mean: f64 = (0..20_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 20_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(5);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((5_000..7_000).contains(&hits), "hits {hits}");
    }
}
